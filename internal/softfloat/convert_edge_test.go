package softfloat

import (
	"math"
	"math/rand"
	"testing"
)

func TestF64ToF32NaNPayloadAndSignaling(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	// QNaN: payload's top bits survive narrowing, no Invalid.
	qnan := uint64(0x7FF8_1234_5678_9ABC)
	z, fl := F64ToF32(qnan, env)
	if !IsNaN32(z) || IsSNaN32(z) {
		t.Errorf("narrowed QNaN = %#x", z)
	}
	if fl != 0 {
		t.Errorf("QNaN narrow flags = %v", fl)
	}
	// SNaN: Invalid raised, result quiet.
	snan := uint64(0x7FF0_0000_0000_0001)
	z, fl = F64ToF32(snan, env)
	if !IsNaN32(z) || IsSNaN32(z) {
		t.Errorf("narrowed SNaN = %#x", z)
	}
	if fl&FlagInvalid == 0 {
		t.Errorf("SNaN narrow flags = %v", fl)
	}
	// Infinity narrows exactly.
	if z, fl := F64ToF32(f64PosInf, env); !IsInf32(z) || fl != 0 {
		t.Errorf("inf narrow = %#x flags %v", z, fl)
	}
	// Overflow: a f64 too big for f32 becomes inf with OE|PE.
	big := math.Float64bits(1e200)
	if z, fl := F64ToF32(big, env); !IsInf32(z) || fl&(FlagOverflow|FlagInexact) != FlagOverflow|FlagInexact {
		t.Errorf("1e200 narrow = %#x flags %v", z, fl)
	}
	// Underflow: tiny f64 becomes f32 denormal or zero with UE.
	tiny := math.Float64bits(1e-60)
	if z, fl := F64ToF32(tiny, env); z != 0 || fl&FlagUnderflow == 0 {
		t.Errorf("1e-60 narrow = %#x flags %v", z, fl)
	}
}

func TestF32ToF64SignalingAndDenormal(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	// f32 SNaN widens to a quiet f64 NaN with Invalid.
	z, fl := F32ToF64(0x7F800001, env)
	if !IsNaN64(z) || IsSNaN64(z) || fl&FlagInvalid == 0 {
		t.Errorf("widen SNaN = %#x flags %v", z, fl)
	}
	// f32 denormal raises DE (and widens exactly).
	d := uint32(1) // smallest f32 denormal = 2^-149
	z, fl = F32ToF64(d, env)
	if fl&FlagDenormal == 0 {
		t.Errorf("widen denormal flags = %v", fl)
	}
	if math.Float64frombits(z) != 0x1p-149 {
		t.Errorf("widen denormal = %v", math.Float64frombits(z))
	}
	// With DAZ the operand vanishes.
	z, fl = F32ToF64(d, Env{RM: RoundNearestEven, DAZ: true})
	if z != 0 || fl != 0 {
		t.Errorf("DAZ widen = %#x flags %v", z, fl)
	}
}

func TestFloatToIntIndefinites(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	cases := []struct {
		name string
		in   float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
		{"2^40", 0x1p40},
		{"-2^40", -0x1p40},
	}
	for _, c := range cases {
		got, fl := F64ToI32Trunc(math.Float64bits(c.in), env)
		if got != intIndefinite32 || fl&FlagInvalid == 0 {
			t.Errorf("F64ToI32Trunc(%s) = %d flags %v", c.name, got, fl)
		}
	}
	// INT32_MIN itself is representable.
	if got, fl := F64ToI32Trunc(math.Float64bits(-0x1p31), env); got != math.MinInt32 || fl&FlagInvalid != 0 {
		t.Errorf("INT32_MIN = %d flags %v", got, fl)
	}
	// 2^31 is not.
	if got, _ := F64ToI32Trunc(math.Float64bits(0x1p31), env); got != intIndefinite32 {
		t.Errorf("2^31 = %d", got)
	}
	// 64-bit edges.
	if got, fl := F64ToI64Trunc(math.Float64bits(-0x1p63), env); got != math.MinInt64 || fl&FlagInvalid != 0 {
		t.Errorf("INT64_MIN = %d flags %v", got, fl)
	}
	if got, _ := F64ToI64Trunc(math.Float64bits(0x1p63), env); got != intIndefinite64 {
		t.Errorf("2^63 = %d", got)
	}
	// f32 sources.
	if got, fl := F32ToI32Trunc(math.Float32bits(float32(math.NaN())), env); got != intIndefinite32 || fl&FlagInvalid == 0 {
		t.Errorf("f32 NaN = %d flags %v", got, fl)
	}
	if got, fl := F32ToI64Trunc(math.Float32bits(1.5), env); got != 1 || fl&FlagInexact == 0 {
		t.Errorf("f32 1.5 = %d flags %v", got, fl)
	}
}

func TestIntToFloatRoundingAtPrecisionEdge(t *testing.T) {
	// 2^53+1 is the first integer binary64 cannot hold.
	v := int64(1)<<53 + 1
	z, fl := I64ToF64(v, Env{RM: RoundNearestEven})
	if fl&FlagInexact == 0 {
		t.Errorf("2^53+1 flags = %v", fl)
	}
	if math.Float64frombits(z) != 0x1p53 {
		t.Errorf("2^53+1 = %v", math.Float64frombits(z))
	}
	// Directed: RU bumps to the next representable.
	z, _ = I64ToF64(v, Env{RM: RoundUp})
	if math.Float64frombits(z) != 0x1p53+2 {
		t.Errorf("RU(2^53+1) = %v", math.Float64frombits(z))
	}
	// MinInt64 magnitude wraps correctly.
	z, fl = I64ToF64(math.MinInt64, Env{RM: RoundNearestEven})
	if math.Float64frombits(z) != -0x1p63 || fl != 0 {
		t.Errorf("MinInt64 = %v flags %v", math.Float64frombits(z), fl)
	}
	// f32 destination at its edge (2^24+1).
	z32, fl := I64ToF32(1<<24+1, Env{RM: RoundNearestEven})
	if fl&FlagInexact == 0 || math.Float32frombits(z32) != 0x1p24 {
		t.Errorf("2^24+1 -> %v flags %v", math.Float32frombits(z32), fl)
	}
}

func TestCompare32AndPredicates(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	one := math.Float32bits(1)
	two := math.Float32bits(2)
	qnan := uint32(0x7FC00000)
	if r, fl := Ucomi32(one, two, env); r != CmpLess || fl != 0 {
		t.Errorf("ucomiss(1,2) = %v %v", r, fl)
	}
	if r, fl := Comi32(one, qnan, env); r != CmpUnordered || fl&FlagInvalid == 0 {
		t.Errorf("comiss(1,QNaN) = %v %v", r, fl)
	}
	if m, _ := Cmp32(two, one, CmpNLE, env); m != ^uint32(0) {
		t.Errorf("cmpnless(2,1) = %#x", m)
	}
	if m, fl := Cmp32(one, qnan, CmpUnord, env); m != ^uint32(0) || fl&FlagInvalid != 0 {
		t.Errorf("cmpunordss(1,QNaN) = %#x %v", m, fl)
	}
	if z, _ := Min32(one, two, env); z != one {
		t.Errorf("minss = %#x", z)
	}
	if z, _ := Max32(one, two, env); z != two {
		t.Errorf("maxss = %#x", z)
	}
	if z, fl := Max32(qnan, one, env); z != one || fl&FlagInvalid == 0 {
		t.Errorf("maxss(QNaN,1) = %#x %v", z, fl)
	}
}

func TestStringRepresentations(t *testing.T) {
	if (FlagInvalid | FlagInexact).String() != "IE|PE" {
		t.Errorf("flags string = %q", (FlagInvalid | FlagInexact).String())
	}
	if Flags(0).String() != "-" {
		t.Error("empty flags string")
	}
	for _, c := range []struct {
		m RoundingMode
		s string
	}{{RoundNearestEven, "RN"}, {RoundDown, "RD"}, {RoundUp, "RU"}, {RoundToZero, "RZ"}} {
		if c.m.String() != c.s {
			t.Errorf("%v string = %q", c.m, c.m.String())
		}
	}
	for _, c := range []struct {
		r CmpResult
		s string
	}{{CmpLess, "lt"}, {CmpEqual, "eq"}, {CmpGreater, "gt"}, {CmpUnordered, "unord"}} {
		if c.r.String() != c.s {
			t.Errorf("cmp string = %q", c.r.String())
		}
	}
}

func TestRoundToInt32MatchesHardware(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for i := 0; i < 100000; i++ {
		a := randPattern32(r)
		f := float64(math.Float32frombits(a))
		got, _ := RoundToInt32(a, RoundNearestEven, false, Env{})
		if want := float32(math.RoundToEven(f)); !hwEquiv32(got, want) {
			t.Fatalf("RoundToInt32 RN(%v) = %#08x, want %#08x", f, got, math.Float32bits(want))
		}
		got, _ = RoundToInt32(a, RoundDown, false, Env{})
		if want := float32(math.Floor(f)); !hwEquiv32(got, want) {
			t.Fatalf("RoundToInt32 RD(%v) = %#08x, want %#08x", f, got, math.Float32bits(want))
		}
		got, _ = RoundToInt32(a, RoundUp, false, Env{})
		if want := float32(math.Ceil(f)); !hwEquiv32(got, want) {
			t.Fatalf("RoundToInt32 RU(%v) = %#08x, want %#08x", f, got, math.Float32bits(want))
		}
		got, _ = RoundToInt32(a, RoundToZero, false, Env{})
		if want := float32(math.Trunc(f)); !hwEquiv32(got, want) {
			t.Fatalf("RoundToInt32 RZ(%v) = %#08x, want %#08x", f, got, math.Float32bits(want))
		}
	}
	// Inexact suppression.
	half := math.Float32bits(2.5)
	if _, fl := RoundToInt32(half, RoundNearestEven, true, Env{}); fl&FlagInexact != 0 {
		t.Error("suppressed roundss set PE")
	}
	if _, fl := RoundToInt32(half, RoundNearestEven, false, Env{}); fl&FlagInexact == 0 {
		t.Error("roundss missed PE")
	}
}

func TestF32ToI64Rounding(t *testing.T) {
	env := Env{RM: RoundNearestEven}
	if got, fl := F32ToI64(math.Float32bits(2.5), env); got != 2 || fl&FlagInexact == 0 {
		t.Errorf("cvtss2siq(2.5) = %d flags %v", got, fl)
	}
	if got, fl := F32ToI64(math.Float32bits(float32(math.Inf(1))), env); got != intIndefinite64 || fl&FlagInvalid == 0 {
		t.Errorf("cvtss2siq(inf) = %d flags %v", got, fl)
	}
	big := math.Float32bits(0x1p62)
	if got, _ := F32ToI64(big, env); got != 1<<62 {
		t.Errorf("cvtss2siq(2^62) = %d", got)
	}
}
