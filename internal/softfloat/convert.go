package softfloat

import "math/bits"

// F64ToF32 narrows a binary64 value to binary32 (cvtsd2ss semantics).
func F64ToF32(a uint64, env Env) (uint32, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	sign := sign64(a)
	aExp := exp64(a)
	aSig := frac64(a)
	if aExp == 0x7FF {
		if aSig != 0 {
			if IsSNaN64(a) {
				fl |= FlagInvalid
			}
			return quiet32(narrowNaN(a)), fl
		}
		return packInf32(sign), fl
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero32(sign), fl
		}
		aExp, aSig = normSubnormal64(aSig)
	} else {
		aSig |= uint64(1) << 52
	}
	// Value = (aSig / 2^52) * 2^(aExp - 1023). Collapse the 53-bit
	// significand to the 31-bit roundPack32 form with jamming.
	sig := uint32(shiftRightJam64(aSig<<10, 32))
	return roundPack32(sign, aExp-897, sig, env, &fl), fl
}

// narrowNaN converts a binary64 NaN pattern to binary32 preserving the
// top payload bits.
func narrowNaN(a uint64) uint32 {
	sign := uint32(a>>32) & f32SignMask
	payload := uint32(frac64(a) >> 29)
	return sign | f32ExpMask | payload
}

// F32ToF64 widens a binary32 value to binary64 (cvtss2sd semantics); the
// conversion is exact for all non-NaN inputs.
func F32ToF64(a uint32, env Env) (uint64, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	if IsNaN32(a) {
		if IsSNaN32(a) {
			fl |= FlagInvalid
		}
		return quiet64(widenNaN(a)), fl
	}
	return widen32to64(a), fl
}

// widenNaN converts a binary32 NaN pattern to binary64.
func widenNaN(a uint32) uint64 {
	sign := uint64(a&f32SignMask) << 32
	payload := uint64(frac32(a)) << 29
	return sign | f64ExpMask | payload
}

// widen32to64 exactly widens a non-NaN binary32 pattern.
func widen32to64(a uint32) uint64 {
	sign := sign32(a)
	aExp := exp32(a)
	aSig := frac32(a)
	if aExp == 0xFF {
		return packInf64(sign)
	}
	if aExp == 0 {
		if aSig == 0 {
			return packZero64(sign)
		}
		aExp, aSig = normSubnormal32(aSig)
		aSig &^= uint32(1) << 23
	}
	return pack64(sign, aExp-127+1023, uint64(aSig)<<29)
}

// I32ToF64 converts a signed 32-bit integer to binary64 (cvtsi2sd); the
// conversion is always exact.
func I32ToF64(v int32) uint64 {
	z, _ := I64ToF64(int64(v), Env{})
	return z
}

// I64ToF64 converts a signed 64-bit integer to binary64 (cvtsi2sdq),
// rounding per env when the magnitude exceeds 53 bits.
func I64ToF64(v int64, env Env) (uint64, Flags) {
	var fl Flags
	if v == 0 {
		return 0, fl
	}
	sign := v < 0
	var m uint64
	if sign {
		m = uint64(-v) // -MinInt64 wraps to the correct magnitude
	} else {
		m = uint64(v)
	}
	lz := bits.LeadingZeros64(m)
	var sig uint64
	if lz == 0 {
		sig = shiftRightJam64(m, 1)
	} else {
		sig = m << uint(lz-1)
	}
	z := roundPack64(sign, int32(1085-lz), sig, env, &fl)
	return z, fl
}

// I32ToF32 converts a signed 32-bit integer to binary32 (cvtsi2ss).
func I32ToF32(v int32, env Env) (uint32, Flags) {
	return I64ToF32(int64(v), env)
}

// I64ToF32 converts a signed 64-bit integer to binary32 (cvtsi2ssq).
func I64ToF32(v int64, env Env) (uint32, Flags) {
	var fl Flags
	if v == 0 {
		return 0, fl
	}
	sign := v < 0
	var m uint64
	if sign {
		m = uint64(-v)
	} else {
		m = uint64(v)
	}
	lz := bits.LeadingZeros64(m)
	var fix uint64
	if lz == 0 {
		fix = shiftRightJam64(m, 1)
	} else {
		fix = m << uint(lz-1)
	}
	sig := uint32(shiftRightJam64(fix, 32))
	z := roundPack32(sign, int32(189-lz), sig, env, &fl)
	return z, fl
}

// intIndefinite32 and intIndefinite64 are the x64 "integer indefinite"
// results of invalid float-to-int conversions.
const (
	intIndefinite32 = int32(-0x80000000)
	intIndefinite64 = int64(-0x8000000000000000)
)

// f64ToInt converts a binary64 pattern to a 64-bit integer with the given
// rounding mode, flagging Invalid for NaN and out-of-range values. The
// bound parameter is the number of value bits of the destination (31 or
// 63).
func f64ToInt(a uint64, rm RoundingMode, bound uint, fl *Flags) int64 {
	sign := sign64(a)
	aExp := exp64(a)
	aSig := frac64(a)
	indefinite := int64(-1) << bound
	if aExp == 0x7FF {
		*fl |= FlagInvalid
		return indefinite
	}
	if aExp == 0 {
		if aSig == 0 {
			return 0
		}
		// Denormal: rounds to 0 or ±1 depending on mode; handled by the
		// generic path below via the sticky shift.
		aExp, aSig = normSubnormal64(aSig)
	}
	aSig |= uint64(1) << 52
	e := aExp - 1023
	var mag uint64
	inexact := false
	if e >= 52 {
		shift := uint(e - 52)
		if shift >= 12 {
			// Magnitude at least 2^64: always out of range.
			*fl |= FlagInvalid
			return indefinite
		}
		// aSig < 2^53 and shift <= 11, so the left shift cannot lose bits.
		mag = aSig << shift
	} else {
		// Keep 10 guard bits, jam the rest, and round.
		var fix uint64
		if e < -63 {
			fix = 1 // pure sticky
		} else {
			fix = shiftRightJam64(aSig<<10, uint(52-e))
		}
		roundBits := fix & 0x3FF
		mag = fix >> 10
		if roundBits != 0 {
			inexact = true
			var inc uint64
			switch rm {
			case RoundNearestEven:
				if roundBits > 0x200 || (roundBits == 0x200 && mag&1 != 0) {
					inc = 1
				}
			case RoundToZero:
			case RoundDown:
				if sign {
					inc = 1
				}
			case RoundUp:
				if !sign {
					inc = 1
				}
			}
			mag += inc
		}
	}
	limit := uint64(1) << bound
	if sign {
		if mag > limit {
			*fl |= FlagInvalid
			return indefinite
		}
		if inexact {
			*fl |= FlagInexact
		}
		return -int64(mag)
	}
	if mag >= limit {
		*fl |= FlagInvalid
		return indefinite
	}
	if inexact {
		*fl |= FlagInexact
	}
	return int64(mag)
}

// F64ToI32 implements cvtsd2si (rounding per env) on a binary64 pattern.
func F64ToI32(a uint64, env Env) (int32, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	return int32(f64ToInt(a, env.RM, 31, &fl)), fl
}

// F64ToI32Trunc implements cvttsd2si (truncation).
func F64ToI32Trunc(a uint64, env Env) (int32, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	return int32(f64ToInt(a, RoundToZero, 31, &fl)), fl
}

// F64ToI64 implements cvtsd2siq.
func F64ToI64(a uint64, env Env) (int64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	return f64ToInt(a, env.RM, 63, &fl), fl
}

// F64ToI64Trunc implements cvttsd2siq.
func F64ToI64Trunc(a uint64, env Env) (int64, Flags) {
	var fl Flags
	a = daz64(a, env, &fl)
	return f64ToInt(a, RoundToZero, 63, &fl), fl
}

// F32ToI32 implements cvtss2si.
func F32ToI32(a uint32, env Env) (int32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	if IsNaN32(a) {
		fl |= FlagInvalid
		return intIndefinite32, fl
	}
	return int32(f64ToInt(widen32to64(a), env.RM, 31, &fl)), fl
}

// F32ToI32Trunc implements cvttss2si.
func F32ToI32Trunc(a uint32, env Env) (int32, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	if IsNaN32(a) {
		fl |= FlagInvalid
		return intIndefinite32, fl
	}
	return int32(f64ToInt(widen32to64(a), RoundToZero, 31, &fl)), fl
}

// F32ToI64 implements cvtss2siq.
func F32ToI64(a uint32, env Env) (int64, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	if IsNaN32(a) {
		fl |= FlagInvalid
		return intIndefinite64, fl
	}
	return f64ToInt(widen32to64(a), env.RM, 63, &fl), fl
}

// F32ToI64Trunc implements cvttss2siq.
func F32ToI64Trunc(a uint32, env Env) (int64, Flags) {
	var fl Flags
	a = daz32(a, env, &fl)
	if IsNaN32(a) {
		fl |= FlagInvalid
		return intIndefinite64, fl
	}
	return f64ToInt(widen32to64(a), RoundToZero, 63, &fl), fl
}
