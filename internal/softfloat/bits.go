package softfloat

import "math/bits"

// shiftRightJam64 shifts a right by count bits, ORing any bits shifted out
// into the least significant bit of the result ("jamming" the sticky bit).
// Counts of 64 or more collapse a to 0 or 1.
func shiftRightJam64(a uint64, count uint) uint64 {
	if count == 0 {
		return a
	}
	if count < 64 {
		out := a >> count
		if a<<(64-count) != 0 {
			out |= 1
		}
		return out
	}
	if a != 0 {
		return 1
	}
	return 0
}

// shiftRightJam32 is the 32-bit version of shiftRightJam64.
func shiftRightJam32(a uint32, count uint) uint32 {
	if count == 0 {
		return a
	}
	if count < 32 {
		out := a >> count
		if a<<(32-count) != 0 {
			out |= 1
		}
		return out
	}
	if a != 0 {
		return 1
	}
	return 0
}

// shiftRightJam128 shifts the 128-bit value hi:lo right by count bits with
// sticky jamming, returning the new 128-bit value.
func shiftRightJam128(hi, lo uint64, count uint) (uint64, uint64) {
	switch {
	case count == 0:
		return hi, lo
	case count < 64:
		sticky := uint64(0)
		if lo<<(64-count) != 0 {
			sticky = 1
		}
		return hi >> count, hi<<(64-count) | lo>>count | sticky
	case count == 64:
		sticky := uint64(0)
		if lo != 0 {
			sticky = 1
		}
		return 0, hi | sticky
	case count < 128:
		sticky := uint64(0)
		if lo != 0 || hi<<(128-count) != 0 {
			sticky = 1
		}
		return 0, hi>>(count-64) | sticky
	default:
		if hi|lo != 0 {
			return 0, 1
		}
		return 0, 0
	}
}

// add128 returns the 128-bit sum of two 128-bit values.
func add128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	lo, carry := bits.Add64(aLo, bLo, 0)
	hi, _ := bits.Add64(aHi, bHi, carry)
	return hi, lo
}

// sub128 returns the 128-bit difference aHi:aLo - bHi:bLo.
func sub128(aHi, aLo, bHi, bLo uint64) (uint64, uint64) {
	lo, borrow := bits.Sub64(aLo, bLo, 0)
	hi, _ := bits.Sub64(aHi, bHi, borrow)
	return hi, lo
}

// lt128 reports whether aHi:aLo < bHi:bLo.
func lt128(aHi, aLo, bHi, bLo uint64) bool {
	return aHi < bHi || (aHi == bHi && aLo < bLo)
}

// shortShiftLeft128 shifts hi:lo left by count (< 64) bits.
func shortShiftLeft128(hi, lo uint64, count uint) (uint64, uint64) {
	if count == 0 {
		return hi, lo
	}
	return hi<<count | lo>>(64-count), lo << count
}
