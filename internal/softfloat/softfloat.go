// Package softfloat implements IEEE 754 binary32 and binary64 arithmetic
// entirely in integer operations on the raw bit patterns, reproducing the
// floating point semantics of the x64 SSE/AVX execution units: the six
// MXCSR status flags, the four rounding modes of the RC field, the
// flush-to-zero (FTZ) and denormals-are-zero (DAZ) controls, and the
// SNaN/QNaN signaling rules.
//
// The package is the foundation of the simulated FPU used by this
// repository's FPSpy reproduction: every floating point instruction the
// guest machine executes is evaluated here, so the condition codes FPSpy
// observes are genuine side effects of IEEE 754 arithmetic rather than
// scripted events.
//
// The rounding/packing structure follows the classic Berkeley SoftFloat
// design: operations compute an exact (or sticky-truncated) significand
// with guard bits and a single roundPack step applies the rounding mode,
// detects overflow/underflow/inexact, and assembles the result.
//
// Underflow semantics follow the masked-exception behavior of SSE with
// tininess detected after rounding: the underflow flag is raised only when
// the result is both tiny and inexact (or when FTZ flushes it).
package softfloat

// Flags is the set of floating point exception conditions an operation
// raised, in the bit positions used by the low six bits of x64 %mxcsr.
type Flags uint32

const (
	// FlagInvalid (IE) indicates an invalid operation: an SNaN operand,
	// inf-inf, 0*inf, 0/0, inf/inf, sqrt of a negative number, or an
	// unrepresentable float-to-int conversion.
	FlagInvalid Flags = 1 << 0
	// FlagDenormal (DE) indicates a denormalized operand. This condition
	// is x64-specific; it is suppressed when DAZ is in effect.
	FlagDenormal Flags = 1 << 1
	// FlagDivideByZero (ZE) indicates division of a finite nonzero value
	// by zero.
	FlagDivideByZero Flags = 1 << 2
	// FlagOverflow (OE) indicates the rounded result did not fit in the
	// destination format and became an infinity (or the largest finite
	// value, under directed rounding toward zero/away from the overflow).
	FlagOverflow Flags = 1 << 3
	// FlagUnderflow (UE) indicates a tiny and inexact result (masked
	// semantics, tininess after rounding), or an FTZ flush.
	FlagUnderflow Flags = 1 << 4
	// FlagInexact (PE) indicates the result is a rounded version of the
	// true result.
	FlagInexact Flags = 1 << 5
)

// String renders the flag set in the compact form used by trace dumps,
// e.g. "IE|PE". The empty set renders as "-".
func (f Flags) String() string {
	if f == 0 {
		return "-"
	}
	names := [...]struct {
		bit  Flags
		name string
	}{
		{FlagInvalid, "IE"},
		{FlagDenormal, "DE"},
		{FlagDivideByZero, "ZE"},
		{FlagOverflow, "OE"},
		{FlagUnderflow, "UE"},
		{FlagInexact, "PE"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	return s
}

// RoundingMode selects how results are rounded, with the encoding of the
// x64 MXCSR.RC field.
type RoundingMode uint8

const (
	// RoundNearestEven rounds to the nearest representable value, ties to
	// the value with an even low-order significand bit (RC=00).
	RoundNearestEven RoundingMode = 0
	// RoundDown rounds toward negative infinity (RC=01).
	RoundDown RoundingMode = 1
	// RoundUp rounds toward positive infinity (RC=10).
	RoundUp RoundingMode = 2
	// RoundToZero truncates toward zero (RC=11).
	RoundToZero RoundingMode = 3
)

// String returns the conventional abbreviation for the mode (RN, RD, RU, RZ).
func (m RoundingMode) String() string {
	switch m {
	case RoundNearestEven:
		return "RN"
	case RoundDown:
		return "RD"
	case RoundUp:
		return "RU"
	case RoundToZero:
		return "RZ"
	}
	return "R?"
}

// Env carries the pieces of floating point control state that alter the
// value or flags an operation produces. It corresponds to the RC, FTZ and
// DAZ fields of %mxcsr; exception masking is layered above this package
// (see internal/mxcsr), because masks affect trap delivery rather than
// arithmetic.
type Env struct {
	// RM is the active rounding mode.
	RM RoundingMode
	// FTZ flushes tiny results to signed zero, raising Underflow and
	// Inexact, instead of producing a denormal.
	FTZ bool
	// DAZ treats denormal operands as signed zeros and suppresses the
	// Denormal flag.
	DAZ bool
}

// Common bit patterns for binary64.
const (
	f64SignMask   = uint64(1) << 63
	f64ExpMask    = uint64(0x7FF) << 52
	f64FracMask   = (uint64(1) << 52) - 1
	f64QuietBit   = uint64(1) << 51
	f64DefaultNaN = uint64(0xFFF8000000000000) // x64 "real indefinite" QNaN
	f64PosInf     = uint64(0x7FF0000000000000)
	f64MaxFinite  = uint64(0x7FEFFFFFFFFFFFFF)
)

// Common bit patterns for binary32.
const (
	f32SignMask   = uint32(1) << 31
	f32ExpMask    = uint32(0xFF) << 23
	f32FracMask   = (uint32(1) << 23) - 1
	f32QuietBit   = uint32(1) << 22
	f32DefaultNaN = uint32(0xFFC00000)
	f32PosInf     = uint32(0x7F800000)
	f32MaxFinite  = uint32(0x7F7FFFFF)
)

// IsNaN64 reports whether the binary64 pattern is a NaN.
func IsNaN64(x uint64) bool {
	return x&f64ExpMask == f64ExpMask && x&f64FracMask != 0
}

// IsSNaN64 reports whether the binary64 pattern is a signaling NaN.
func IsSNaN64(x uint64) bool {
	return IsNaN64(x) && x&f64QuietBit == 0
}

// IsInf64 reports whether the binary64 pattern is an infinity.
func IsInf64(x uint64) bool {
	return x&^f64SignMask == f64PosInf
}

// IsDenormal64 reports whether the binary64 pattern is a nonzero
// denormalized number.
func IsDenormal64(x uint64) bool {
	return x&f64ExpMask == 0 && x&f64FracMask != 0
}

// IsZero64 reports whether the binary64 pattern is a signed zero.
func IsZero64(x uint64) bool {
	return x&^f64SignMask == 0
}

// IsNaN32 reports whether the binary32 pattern is a NaN.
func IsNaN32(x uint32) bool {
	return x&f32ExpMask == f32ExpMask && x&f32FracMask != 0
}

// IsSNaN32 reports whether the binary32 pattern is a signaling NaN.
func IsSNaN32(x uint32) bool {
	return IsNaN32(x) && x&f32QuietBit == 0
}

// IsInf32 reports whether the binary32 pattern is an infinity.
func IsInf32(x uint32) bool {
	return x&^f32SignMask == f32PosInf
}

// IsDenormal32 reports whether the binary32 pattern is a nonzero
// denormalized number.
func IsDenormal32(x uint32) bool {
	return x&f32ExpMask == 0 && x&f32FracMask != 0
}

// IsZero32 reports whether the binary32 pattern is a signed zero.
func IsZero32(x uint32) bool {
	return x&^f32SignMask == 0
}

// quiet64 converts a NaN pattern to its quiet form.
func quiet64(x uint64) uint64 { return x | f64QuietBit }

// quiet32 converts a NaN pattern to its quiet form.
func quiet32(x uint32) uint32 { return x | f32QuietBit }

// propagateNaN64 implements the SSE NaN propagation rule for two-operand
// instructions: if the first (destination) operand is a NaN, its quieted
// form is the result; otherwise the second operand's. An SNaN among the
// operands raises Invalid.
func propagateNaN64(a, b uint64, fl *Flags) uint64 {
	if IsSNaN64(a) || IsSNaN64(b) {
		*fl |= FlagInvalid
	}
	if IsNaN64(a) {
		return quiet64(a)
	}
	return quiet64(b)
}

// propagateNaN32 is the binary32 version of propagateNaN64.
func propagateNaN32(a, b uint32, fl *Flags) uint32 {
	if IsSNaN32(a) || IsSNaN32(b) {
		*fl |= FlagInvalid
	}
	if IsNaN32(a) {
		return quiet32(a)
	}
	return quiet32(b)
}
