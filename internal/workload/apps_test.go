package workload_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/workload"
)

// appEventSets is this reproduction's ground truth for the applications:
// the union of the paper's Figure 9 (aggregate) and Figure 11
// (individual, filtered), which agree in our deterministic runs. WRF is
// special: FPSpy steps aside, so aggregate mode reports nothing.
var appEventSets = map[string]fpspy.Flags{
	"miniaero": fpspy.FlagDenormal | fpspy.FlagUnderflow | fpspy.FlagOverflow | fpspy.FlagInexact,
	"lammps":   fpspy.FlagInexact,
	"laghos":   fpspy.FlagDivideByZero | fpspy.FlagUnderflow | fpspy.FlagInexact,
	"moose":    fpspy.FlagInexact,
	"wrf":      0, // aggregate: stepped aside
	"enzo":     fpspy.FlagInvalid | fpspy.FlagInexact,
	"gromacs":  fpspy.FlagDenormal | fpspy.FlagUnderflow | fpspy.FlagInexact,
}

func runApp(t *testing.T, name string, cfg fpspy.Config) *fpspy.Result {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{Config: cfg})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s: exit code %d", name, res.ExitCode)
	}
	return res
}

func TestAppsAggregateEventSets(t *testing.T) {
	for name, want := range appEventSets {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			res := runApp(t, name, fpspy.Config{Mode: fpspy.ModeAggregate})
			var got fpspy.Flags
			for _, a := range res.Aggregates() {
				got |= a.Flags
			}
			if got != want {
				t.Errorf("aggregate events = %v, want %v", got, want)
			}
			if name == "wrf" && res.Store.StepAsides != 1 {
				t.Errorf("wrf step-asides = %d, want 1", res.Store.StepAsides)
			}
			if name != "wrf" && res.Store.StepAsides != 0 {
				t.Errorf("%s step-asides = %d, want 0", name, res.Store.StepAsides)
			}
		})
	}
}

func TestAppsIndividualFilteredEventSets(t *testing.T) {
	// Individual mode with Inexact filtered out: the paper's Figure 11
	// pass. Every non-Inexact event appears; the captured sets must
	// equal the aggregate sets minus Inexact (WRF captures nothing
	// non-Inexact before stepping aside).
	for name, agg := range appEventSets {
		name := name
		want := agg &^ fpspy.FlagInexact
		t.Run(name, func(t *testing.T) {
			res := runApp(t, name, fpspy.Config{
				Mode:       fpspy.ModeIndividual,
				ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
			})
			var got fpspy.Flags
			for _, rec := range res.MustRecords() {
				got |= rec.Event
			}
			if got != want {
				t.Errorf("filtered events = %v, want %v", got, want)
			}
		})
	}
}

func TestAppsBuildDeterministic(t *testing.T) {
	for _, w := range workload.Apps() {
		p1 := w.Build(workload.SizeLarge)
		p2 := w.Build(workload.SizeLarge)
		if len(p1.Insts) != len(p2.Insts) || len(p1.Data) != len(p2.Data) {
			t.Errorf("%s: nondeterministic build", w.Meta.Name)
		}
		if len(p1.Insts) == 0 {
			t.Errorf("%s: empty program", w.Meta.Name)
		}
	}
}

func TestAppsSmallSizeAlsoRun(t *testing.T) {
	for _, w := range workload.Apps() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeAggregate},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit %d", res.ExitCode)
			}
		})
	}
}

func TestStaticAnalysisMatchesFigure8(t *testing.T) {
	// The paper's Figure 8 source-analysis matrix, restricted to libc
	// call sites: which functions each application's binary references
	// (including dead branches).
	wantRefs := map[string][]string{
		"miniaero": {},
		"lammps":   {"clone"},
		"laghos":   {},
		"moose":    {"clone", "pthread_create", "sigaction", "feenableexcept", "fedisableexcept"},
		"wrf":      {"fesetenv"},
		"enzo":     {"clone"},
		"gromacs":  {"clone", "pthread_create", "pthread_exit", "sigaction", "feenableexcept", "fedisableexcept"},
	}
	for name, want := range wantRefs {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := workload.StaticLibcUse(w.Build(workload.SizeLarge))
		for _, sym := range want {
			if !got[sym] {
				t.Errorf("%s: missing static reference to %s", name, sym)
			}
		}
		// No fe* references beyond the expected set (the step-aside
		// trigger list must match Figure 8).
		for sym := range got {
			if len(sym) > 2 && sym[:2] == "fe" {
				found := false
				for _, w := range want {
					if w == sym {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: unexpected fe* reference %s", name, sym)
				}
			}
		}
	}
}
