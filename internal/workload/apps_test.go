package workload_test

import (
	"reflect"
	"testing"

	fpspy "repro"
	"repro/internal/binscan"
	"repro/internal/study"
	"repro/internal/workload"
)

// appEventSets is this reproduction's ground truth for the applications:
// the union of the paper's Figure 9 (aggregate) and Figure 11
// (individual, filtered), which agree in our deterministic runs. WRF is
// special: FPSpy steps aside, so aggregate mode reports nothing.
var appEventSets = map[string]fpspy.Flags{
	"miniaero": fpspy.FlagDenormal | fpspy.FlagUnderflow | fpspy.FlagOverflow | fpspy.FlagInexact,
	"lammps":   fpspy.FlagInexact,
	"laghos":   fpspy.FlagDivideByZero | fpspy.FlagUnderflow | fpspy.FlagInexact,
	"moose":    fpspy.FlagInexact,
	"wrf":      0, // aggregate: stepped aside
	"enzo":     fpspy.FlagInvalid | fpspy.FlagInexact,
	"gromacs":  fpspy.FlagDenormal | fpspy.FlagUnderflow | fpspy.FlagInexact,
}

func runApp(t *testing.T, name string, cfg fpspy.Config) *fpspy.Result {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{Config: cfg})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s: exit code %d", name, res.ExitCode)
	}
	return res
}

func TestAppsAggregateEventSets(t *testing.T) {
	for name, want := range appEventSets {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			res := runApp(t, name, fpspy.Config{Mode: fpspy.ModeAggregate})
			var got fpspy.Flags
			for _, a := range res.Aggregates() {
				got |= a.Flags
			}
			if got != want {
				t.Errorf("aggregate events = %v, want %v", got, want)
			}
			if name == "wrf" && res.Store.StepAsides != 1 {
				t.Errorf("wrf step-asides = %d, want 1", res.Store.StepAsides)
			}
			if name != "wrf" && res.Store.StepAsides != 0 {
				t.Errorf("%s step-asides = %d, want 0", name, res.Store.StepAsides)
			}
		})
	}
}

func TestAppsIndividualFilteredEventSets(t *testing.T) {
	// Individual mode with Inexact filtered out: the paper's Figure 11
	// pass. Every non-Inexact event appears; the captured sets must
	// equal the aggregate sets minus Inexact (WRF captures nothing
	// non-Inexact before stepping aside).
	for name, agg := range appEventSets {
		name := name
		want := agg &^ fpspy.FlagInexact
		t.Run(name, func(t *testing.T) {
			res := runApp(t, name, fpspy.Config{
				Mode:       fpspy.ModeIndividual,
				ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
			})
			var got fpspy.Flags
			for _, rec := range res.MustRecords() {
				got |= rec.Event
			}
			if got != want {
				t.Errorf("filtered events = %v, want %v", got, want)
			}
		})
	}
}

func TestAppsBuildDeterministic(t *testing.T) {
	for _, w := range workload.Apps() {
		p1 := w.Build(workload.SizeLarge)
		p2 := w.Build(workload.SizeLarge)
		if len(p1.Insts) != len(p2.Insts) || len(p1.Data) != len(p2.Data) {
			t.Errorf("%s: nondeterministic build", w.Meta.Name)
		}
		if len(p1.Insts) == 0 {
			t.Errorf("%s: empty program", w.Meta.Name)
		}
	}
}

func TestAppsSmallSizeAlsoRun(t *testing.T) {
	for _, w := range workload.Apps() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeAggregate},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit %d", res.ExitCode)
			}
		})
	}
}

func TestStaticAnalysisMatchesFigure8(t *testing.T) {
	// The Figure 8 matrix is now *computed* by binscan from the guest
	// binaries, so the assertions are generated the same way: for each
	// application, the deprecated StaticLibcUse wrapper, the binscan
	// presence/reachability census, and the rendered study table must
	// all agree cell for cell.
	apps := workload.Apps()
	scans := make(map[string]*binscan.Scan, len(apps))
	for _, w := range apps {
		scans[w.Meta.Name] = binscan.ScanProgram(w.Build(workload.SizeLarge))
	}

	// The deprecated wrapper must delegate to binscan exactly.
	for _, w := range apps {
		got := workload.StaticLibcUse(w.Build(workload.SizeLarge))
		want := scans[w.Meta.Name].PresentLibc()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: StaticLibcUse = %v, binscan presence = %v", w.Meta.Name, got, want)
		}
	}

	// Reachability can only shrink the presence set.
	for name, scan := range scans {
		present, reach := scan.PresentLibc(), scan.ReachableLibc()
		for sym := range reach {
			if !present[sym] {
				t.Errorf("%s: %s reachable but not present", name, sym)
			}
		}
	}

	// The rendered Figure 8 rows must match cells generated from the
	// scans and the source-macro metadata.
	tab, err := study.New().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]string)
	for _, row := range tab.Rows {
		rows[row[0]] = row[1:]
	}
	for _, w := range apps {
		name := w.Meta.Name
		row, ok := rows[name]
		if !ok {
			t.Fatalf("Figure 8 has no row for %s", name)
		}
		scan := scans[name]
		refSet := map[string]bool{}
		for _, r := range w.Meta.SourceRefs {
			refSet[r] = true
		}
		present, reach := scan.PresentLibc(), scan.ReachableLibc()
		for i, sym := range []string(tab.Header[1:]) {
			want := study.Figure8Cell(present[sym], reach[sym], refSet[sym])
			if row[i] != want {
				t.Errorf("%s/%s: table cell %q, binscan says %q", name, sym, row[i], want)
			}
		}
	}

	// Paper anchors that must survive any workload refactoring: WRF's
	// live fesetenv (the step-aside trigger), and the dead fe*/sigaction
	// cleanup after pthread_exit in MOOSE and GROMACS that grep counts
	// but reachability proves dead.
	if !scans["wrf"].ReachableLibc()["fesetenv"] {
		t.Error("wrf: fesetenv must be reachable (step-aside trigger)")
	}
	for _, name := range []string{"moose", "gromacs"} {
		scan := scans[name]
		for _, sym := range []string{"feenableexcept", "fedisableexcept", "sigaction"} {
			if !scan.PresentLibc()[sym] {
				t.Errorf("%s: %s should be present in the binary", name, sym)
			}
			if scan.ReachableLibc()[sym] {
				t.Errorf("%s: %s should be dead code only", name, sym)
			}
		}
	}
	for _, name := range []string{"lammps", "enzo"} {
		if !scans[name].ReachableLibc()["clone"] {
			t.Errorf("%s: clone should be reachable", name)
		}
	}
	for _, name := range []string{"miniaero", "laghos"} {
		if got := scans[name].PresentLibc(); len(got) != 0 {
			t.Errorf("%s: expected no libc references, got %v", name, got)
		}
	}
}
