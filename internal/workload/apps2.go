package workload

import (
	"repro/internal/isa"
)

// WRF: weather forecasting (2D squall-line advection). WRF is the one
// study application that *dynamically* executes floating point
// environment control: partway through the run it calls fesetenv, which
// clears the sticky condition codes — so aggregate mode sees nothing
// (FPSpy steps aside; Figure 9's empty WRF row) while individual-mode
// sampling captures the rounding that happened before (Figure 14).
var WRF = register(&Workload{
	Meta: Meta{
		Name: "wrf", Suite: SuiteApp,
		Languages: "Fortran/C", LOC: 1_400_000,
		Deps:        []string{"NetCDF", "MPI"},
		Problem:     "Squall2D_y",
		Concurrency: "mpi",
		ExecTime:    "30m 25.019s",
		SourceRefs:  []string{"fesetenv"},
	},
	Build: buildWRF,
})

func buildWRF(size Size) *isa.Program {
	dim := int64(36)
	steps := int64(80)
	if size == SizeSmall {
		dim, steps = 16, 24
	}
	b := isa.NewBuilder("wrf")

	field := make([]float64, dim)
	for i := range field {
		field[i] = 300.0 + float64(i%9) // potential temperature
	}
	grid := b.Float64s(field...)

	// Microphysics moisture array and rate (vectorized, packed doubles).
	moist := b.Float64s(0.013, 0.027, 0.041, 0.033)
	rate := b.Float64s(1.0003, 1.0003, 1.0003, 1.0003)
	fconst(b, 7, 0.2) // Courant number
	fesetenvAt := steps * 3 / 10

	loop(b, isa.R13, isa.R11, steps, func() {
		// Upwind advection sweep.
		b.Movi(isa.R9, int64(grid))
		loop(b, isa.R8, isa.R12, dim-1, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.Fld(1, isa.R7, 8)
			b.FP2(isa.OpSUBSD, 2, 1, 0)
			b.FP2(isa.OpMULSD, 2, 2, 7)
			b.FP2(isa.OpADDSD, 0, 0, 2)
			b.Fst(isa.R7, 0, 0)
			busywork(b, 90) // halo exchange and grid bookkeeping
		})
		// Vectorized microphysics update (condensation/evaporation).
		b.Movi(isa.R9, int64(moist))
		b.Fldv(3, isa.R9, 0)
		b.Movi(isa.R6, int64(rate))
		b.Fldv(5, isa.R6, 0)
		b.FP2(isa.OpMULPD, 3, 3, 5)
		b.FP2(isa.OpADDPD, 3, 3, 5)
		b.FP2(isa.OpSUBPD, 3, 3, 5)
		b.Fstv(isa.R9, 0, 3)
		// Physics initialization at 30% of the run: WRF configures its
		// own floating point environment.
		b.Movi(isa.R6, fesetenvAt)
		skip := b.Label("nofpctl")
		b.Bne(isa.R13, isa.R6, skip)
		b.Movi(isa.R1, 0) // FE_DFL_ENV
		b.CallC("fesetenv")
		b.Bind(skip)
	})
	b.Hlt()
	return b.Build()
}

// ENZO: astrophysics AMR hydrodynamics (galaxy simulation). Refined
// boundary cells evaluate 0/0 mass-to-volume ratios — genuine NaNs
// (Invalid) occurring throughout the run, at a rate that grows as the
// refined region expands (the paper's Figure 12). A clone()d worker
// does the I/O bookkeeping.
var ENZO = register(&Workload{
	Meta: Meta{
		Name: "enzo", Suite: SuiteApp,
		Languages: "C/Fortran/Python", LOC: 307_000,
		Deps:        []string{"MPI", "HDF5"},
		Problem:     "GalaxySimulation",
		Concurrency: "mpi",
		ExecTime:    "26m 37.805s",
	},
	Build: buildENZO,
})

func buildENZO(size Size) *isa.Program {
	cells := int64(96)
	steps := int64(120)
	if size == SizeSmall {
		cells, steps = 32, 40
	}
	b := isa.NewBuilder("enzo")

	rhoInit := make([]float64, cells)
	for i := range rhoInit {
		rhoInit[i] = 1.0 + 0.01*float64(i%11)
	}
	rho := b.Float64s(rhoInit...)
	ghost := b.Zeros(64)
	// Vectorized self-gravity kernel operands (packed doubles).
	gmass := b.Float64s(1.7, 2.3, 3.1, 4.7)
	gdist := b.Float64s(1.3, 1.9, 2.7, 3.3)

	worker := b.Label("ioworker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("clone")

	fconst(b, 7, 0.05) // gravity coefficient

	loop(b, isa.R13, isa.R11, steps, func() {
		// Self-gravity + hydro sweep (Inexact).
		b.Movi(isa.R9, int64(rho))
		loop(b, isa.R8, isa.R12, cells-1, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.Fld(1, isa.R7, 8)
			b.FP2(isa.OpADDSD, 2, 0, 1)
			b.FP2(isa.OpMULSD, 2, 2, 7)
			b.FP1(isa.OpSQRTSD, 3, 2)
			b.FP2(isa.OpADDSD, 0, 0, 3)
			fconst(b, 4, 1.002)
			b.FP2(isa.OpDIVSD, 0, 0, 4)
			b.Fst(isa.R7, 0, 0)
			busywork(b, 90) // AMR tree walks between flux updates
		})
		// Vectorized gravity solve on the coarse grid: four potential
		// lanes at once (packed divide and square root).
		b.Movi(isa.R6, int64(gmass))
		b.Fldv(3, isa.R6, 0)
		b.Movi(isa.R6, int64(gdist))
		b.Fldv(4, isa.R6, 0)
		b.FP2(isa.OpDIVPD, 5, 3, 4)
		b.FP1(isa.OpSQRTPD, 5, 5)
		// Refined boundary cells: k grows with the refined region, so
		// the NaN rate rises over the run. Each evaluates an empty
		// cell's mass/volume = 0/0 (Invalid), stored to ghost zones.
		// k = 1 + 3*step/steps (+1 every 7th step for AMR bursts).
		b.Movi(isa.R6, 3)
		b.Mulq(isa.R10, isa.R13, isa.R6)
		b.Movi(isa.R6, steps)
		b.Divq(isa.R10, isa.R10, isa.R6)
		b.Addi(isa.R10, isa.R10, 1)
		b.Movi(isa.R6, 7)
		b.Remq(isa.R7, isa.R13, isa.R6)
		noburst := b.Label("noburst")
		b.Bne(isa.R7, isa.R0, noburst)
		b.Addi(isa.R10, isa.R10, 1)
		b.Bind(noburst)
		b.Movi(isa.R9, int64(ghost))
		b.Movi(isa.R8, 0)
		whileLt(b, isa.R8, isa.R10, func() {
			b.Movqx(0, isa.R0)          // mass = +0
			b.FP2(isa.OpDIVSD, 1, 0, 0) // 0/0: NaN, Invalid
			b.Fst(isa.R9, 0, 1)
			b.Addi(isa.R8, isa.R8, 1)
		})
	})
	b.Hlt()

	b.Bind(worker)
	b.Movi(isa.R9, 1)
	loop(b, isa.R8, isa.R11, 3000, func() {
		lcgStep(b, isa.R9)
	})
	b.CallC("pthread_exit")
	return b.Build()
}

// GROMACS: molecular dynamics with AVX/FMA single-precision nonbonded
// kernels — the reason the paper's Figure 18 shows 25 instruction forms
// used by GROMACS and nothing else. The dispersion-table generation at
// startup walks the force tail through the binary32 denormal range
// (Denormal + Underflow, early and brief, which is why 5% sampling sees
// only Inexact); the main kernel is vector FMA arithmetic with a scalar
// double-precision energy accumulation epilogue (16 forms shared with
// the other codes).
var GROMACS = register(&Workload{
	Meta: Meta{
		Name: "gromacs", Suite: SuiteApp,
		Languages: "C++/C", LOC: 1_000_000,
		Deps:        []string{"MPI", "MKL", "OpenMP"},
		Problem:     "1AKI in Water",
		Concurrency: "openmp",
		ExecTime:    "221m 59.184s",
		SourceRefs:  []string{"SIGFPE"},
	},
	Build: buildGROMACS,
})

func buildGROMACS(size Size) *isa.Program {
	pairs := int64(60)
	steps := int64(60)
	if size == SizeSmall {
		pairs, steps = 20, 20
	}
	b := isa.NewBuilder("gromacs")

	// 8-lane f32 coordinate deltas, all near unity.
	mk8 := func(base float32) uint64 {
		v := make([]float32, 8)
		for i := range v {
			v[i] = base + 0.06125*float32(i)
		}
		return b.Float32s(v...)
	}
	dx := mk8(0.75)
	dy := mk8(0.90)
	soft := mk8(0.015625)
	ones := mk8(1.0)
	half := mk8(0.5)
	eps := mk8(0.25)
	// Long-range correction epsilon: far below the working values' ULP,
	// so adding or subtracting it always rounds.
	tinyv := make([]float32, 8)
	for i := range tinyv {
		tinyv[i] = 1.1e-9 + 1e-11*float32(i)
	}
	tiny := b.Float32s(tinyv...)
	// Dispersion table tail: binary32 denormals, plus two tiny *normal*
	// values whose product underflows completely (a pure Underflow with
	// no denormal operand).
	tail := b.Float32s(1.2e-40, 3.0e-42, 7.0e-44, 0.5, 1.2e-30, 3.0e-22)

	worker := b.Label("ompworker")

	// Topology setup: integer-dominated preprocessing long enough that
	// the denormal table window below escapes the sampler's initial
	// on-period (Figure 14 shows only Inexact for GROMACS).
	b.Movi(isa.R10, 77)
	loop(b, isa.R8, isa.R11, 9000, func() {
		lcgStep(b, isa.R10)
	})

	// Table-generation phase: denormal tail handling. vmulss on a
	// denormal raises Denormal; the product of two tiny values
	// underflows completely.
	b.Movi(isa.R9, int64(tail))
	b.Flds(0, isa.R9, 0)                  // 1.2e-40 (denormal)
	b.Flds(1, isa.R9, 4)                  // 3.0e-42 (denormal)
	b.Flds(2, isa.R9, 12)                 // 0.5
	b.FP2(isa.OpVMULSS, 3, 0, 2)          // denormal operand: DE
	b.Flds(4, isa.R9, 16)                 // 1.2e-30 (normal)
	b.Flds(5, isa.R9, 20)                 // 3.0e-22 (normal)
	b.FP2(isa.OpVMULSS, 4, 4, 5)          // tiny*tiny: complete underflow, UE only
	b.Ucomi(isa.OpVUCOMISS, isa.R8, 0, 2) // compare vs denormal: DE
	// Re-zone the table with integer stores (no further FP contact).
	b.St(isa.R9, 0, isa.R0)
	b.St(isa.R9, 8, isa.R0)

	// Spawn OpenMP-style workers: one pthread, one raw clone.
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 1)
	b.CallC("clone")

	// f64 energy accumulator in x13.
	fconst(b, 13, 0.0)
	b.Movi(isa.R10, 0x20000000000001) // > 2^53, odd: cvtsi2sdq rounds

	loop(b, isa.R13, isa.R11, steps, func() {
		b.Movi(isa.R9, int64(dx))
		loop(b, isa.R8, isa.R12, pairs, func() {
			b.Fldv(0, isa.R9, int64(dy-dx))   // dy lanes
			b.Fldv(1, isa.R9, 0)              // dx lanes
			b.Fldv(2, isa.R9, int64(soft-dx)) // softening
			b.Fldv(3, isa.R9, int64(ones-dx))
			b.Fldv(4, isa.R9, int64(half-dx))
			b.Fldv(5, isa.R9, int64(eps-dx))
			// The hot j-cluster loop: the handful of core FMA forms
			// account for nearly all of GROMACS's rounding events (the
			// skew of the paper's Figure 17).
			b.Movi(isa.R14, 0)
			b.Movi(isa.R7, 8)
			cluster := b.Label("jcluster")
			b.Bind(cluster)
			b.FP2(isa.OpVMULPS, 6, 1, 1)       // dx^2
			b.FMA(isa.OpVFMADDPS, 6, 0, 0, 6)  // r2 = dy^2 + dx^2
			b.FP2(isa.OpVADDPS, 6, 6, 2)       // softened r2
			b.FP2(isa.OpVDIVPS, 7, 3, 6)       // rinv2
			b.FP2(isa.OpVMULPS, 8, 7, 7)       // rinv4
			b.FMA(isa.OpVFMSUBPS, 8, 8, 7, 4)  // rinv6 - 0.5
			b.FMA(isa.OpVFNMADDPS, 9, 8, 5, 7) // F = rinv2 - eps*(...)
			b.Addi(isa.R14, isa.R14, 1)
			b.Blt(isa.R14, isa.R7, cluster)
			b.Fldv(2, isa.R9, int64(tiny-dx)) // epsilon lanes (soft is dead)
			b.FP2(isa.OpVSUBPS, 9, 9, 2)      // long-range correction
			b.Dp(isa.OpVDPPS, 10, 9, 9)       // |F|^2 per 128-bit group
			b.FP2(isa.OpADDPS, 9, 9, 2)       // legacy SSE tail
			b.FP2(isa.OpSUBPS, 9, 9, 2)
			b.Round(isa.OpVROUNDPS, 11, 10, isa.RoundImmNearest) // table index
			b.Cvt(isa.OpVCVTPS2DQ, 12, 10)                       // quantized bins
			// Pair search, PME spreading, and constraint bookkeeping
			// dominate GROMACS's dynamic mix; its captured-event rate is
			// the lowest in Figure 15.
			busyloop(b, isa.R14, isa.R7, 3900)
		})
		// Per-step scalar epilogue, once per energy group: the
		// switching-function evaluation and double-precision energy
		// reduction are orders of magnitude rarer than the vector kernel
		// — the tail of the rank-popularity distribution. Operands are
		// the 0.9/0.75 coordinates (not power-of-two constants, which
		// would make the chain exact and eventless).
		b.Movi(isa.R14, 0)
		b.Movi(isa.R12, 8)
		egroup := b.Label("energygroup")
		b.Bind(egroup)
		b.FP1(isa.OpVSQRTSS, 11, 10)   // |F|
		b.FP2(isa.OpVMULSS, 11, 11, 0) // * 0.9
		b.FP2(isa.OpVADDSS, 11, 11, 1) // + 0.75
		b.FP2(isa.OpVDIVSS, 11, 11, 0) // / 0.9
		b.FP2(isa.OpVSUBSS, 11, 11, 2) // - epsilon: rounds
		b.FMA(isa.OpVFMADDSS, 11, 11, 0, 1)
		b.FMA(isa.OpVFMSUBSS, 11, 11, 0, 1)
		b.FMA(isa.OpVFNMADDSS, 11, 11, 0, 1)
		b.FP2(isa.OpVMULSS, 11, 11, 11)     // energy density: |.|^2
		b.FP2(isa.OpVADDSS, 11, 11, 1)      // + 0.75 baseline
		b.Cvt(isa.OpVCVTTSS2SI, isa.R7, 11) // truncation: PE
		// Double-precision energy reduction (shared scalar forms).
		b.Cvt(isa.OpCVTSS2SD, 14, 11)
		b.FP2(isa.OpADDSD, 13, 13, 14)
		fconst(b, 14, 1.0000001)
		b.FP2(isa.OpMULSD, 13, 13, 14)
		b.FP1(isa.OpVSQRTSD, 15, 13)   // AVX scalar sqrt
		b.Cvt(isa.OpVCVTSD2SS, 12, 15) // narrow: PE
		b.Addi(isa.R14, isa.R14, 1)
		b.Blt(isa.R14, isa.R12, egroup)
		// Long-range correction: integer virial converted at double
		// precision (cvtsi2sdq on a 54-bit odd value rounds).
		b.Cvt(isa.OpCVTSI2SDQ, 14, isa.R10)
		b.FP2(isa.OpSUBSD, 13, 13, 14)
		b.FP2(isa.OpADDSD, 13, 13, 14)
	})
	b.Hlt()

	b.Bind(worker)
	b.Movi(isa.R9, 2)
	loop(b, isa.R8, isa.R11, 1500, func() {
		lcgStep(b, isa.R9)
	})
	b.CallC("pthread_exit")

	// Static-only references (Figure 8's GROMACS row): error handlers
	// never reached by this run.
	b.CallC("sigaction")
	b.CallC("feenableexcept")
	b.CallC("fedisableexcept")
	b.Hlt()
	return b.Build()
}
