package workload_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/workload"
)

// TestValidationMatrix reproduces the paper's Section 5 validation: test
// programs that produce every event, in every execution model, traced
// correctly in both modes.
func TestValidationMatrix(t *testing.T) {
	all := fpspy.FlagInvalid | fpspy.FlagDenormal | fpspy.FlagDivideByZero |
		fpspy.FlagOverflow | fpspy.FlagUnderflow | fpspy.FlagInexact
	models := []struct {
		name    string
		model   workload.ValidationModel
		threads int // traced threads expected (individual mode)
	}{
		{"single", workload.ModelSingle, 1},
		{"threads", workload.ModelThreads, 3},
		{"processes", workload.ModelProcesses, 2},
		{"processes+threads", workload.ModelProcessesThreads, 4},
		{"with-signals", workload.ModelWithSignals, 3},
	}
	for _, m := range models {
		m := m
		t.Run(m.name+"/aggregate", func(t *testing.T) {
			res, err := fpspy.Run(workload.BuildValidation(m.model), fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeAggregate},
			})
			if err != nil {
				t.Fatal(err)
			}
			var union fpspy.Flags
			for _, a := range res.Aggregates() {
				union |= a.Flags
			}
			if union != all {
				t.Errorf("aggregate union = %v, want all events", union)
			}
			if len(res.Aggregates()) < m.threads {
				t.Errorf("aggregate records = %d, want >= %d", len(res.Aggregates()), m.threads)
			}
		})
		t.Run(m.name+"/individual", func(t *testing.T) {
			res, err := fpspy.Run(workload.BuildValidation(m.model), fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeIndividual},
			})
			if err != nil {
				t.Fatal(err)
			}
			var union fpspy.Flags
			for _, rec := range res.MustRecords() {
				union |= rec.Raised
			}
			if union != all {
				t.Errorf("individual union = %v, want all events", union)
			}
			if got := len(res.Store.Threads()); got != m.threads {
				t.Errorf("traced threads = %d, want %d", got, m.threads)
			}
			if res.Store.StepAsides != 0 {
				t.Errorf("step-asides = %d", res.Store.StepAsides)
			}
		})
	}
}
