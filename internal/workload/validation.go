package workload

import (
	"repro/internal/isa"
)

// Validation programs, as in the paper's Section 5: "we built a range of
// test programs that produce all of the events FPSpy can detect, within
// different execution models (single process/thread, single
// process/multiple thread, multiple processes, multiple processes each
// with multiple threads, and confounding all with signals)."

// ValidationModel selects the execution model.
type ValidationModel int

const (
	// ModelSingle is one process, one thread.
	ModelSingle ValidationModel = iota
	// ModelThreads is one process, several threads.
	ModelThreads
	// ModelProcesses is several processes (fork).
	ModelProcesses
	// ModelProcessesThreads is several processes each with threads.
	ModelProcessesThreads
	// ModelWithSignals confounds the threaded model with guest signal
	// handlers on a non-FPSpy signal.
	ModelWithSignals
)

// emitAllEvents emits a sequence producing every observable event:
// Inexact, Underflow (complete), Denormal, DivideByZero, Invalid, and
// Overflow.
func emitAllEvents(b *isa.Builder) {
	fconst(b, 0, 1.0)
	fconst(b, 1, 3.0)
	b.FP2(isa.OpDIVSD, 2, 0, 1) // PE
	fconst(b, 0, 1e-200)
	fconst(b, 1, 1e-155)
	b.FP2(isa.OpMULSD, 2, 0, 1) // UE (complete underflow)
	fconst(b, 0, 1e-310)        // denormal constant
	fconst(b, 1, 2.5)
	b.FP2(isa.OpMULSD, 2, 0, 1) // DE
	fconst(b, 0, 7.0)
	b.Movqx(1, isa.R0)
	b.FP2(isa.OpDIVSD, 2, 0, 1) // ZE
	b.Movqx(0, isa.R0)
	b.FP2(isa.OpDIVSD, 2, 0, 0) // IE (0/0)
	fconst(b, 0, 1e308)
	fconst(b, 1, 1e308)
	b.FP2(isa.OpMULSD, 2, 0, 1) // OE
}

// BuildValidation constructs the validation program for a model.
func BuildValidation(model ValidationModel) *isa.Program {
	b := isa.NewBuilder("validation")
	switch model {
	case ModelSingle:
		emitAllEvents(b)
		b.Hlt()

	case ModelThreads, ModelWithSignals:
		if model == ModelWithSignals {
			// Hook a benign signal (SIGALRM via its guest handler) to
			// confound delivery; FPSpy must coexist since the alarm
			// signal is only reserved when temporal sampling is active.
			h := b.Label("alarmh")
			b.Movi(isa.R1, 14) // SIGALRM
			b.Lea(isa.R2, h)
			b.CallC("signal")
			// Arm a real-time timer so the handler actually fires.
			b.Movi(isa.R1, 0) // TimerReal
			b.Movi(isa.R2, 2000)
			b.CallC("setitimer")
			skip := b.Label("past")
			b.Jmp(skip)
			b.Bind(h)
			b.CallC("rt_sigreturn")
			b.Bind(skip)
		}
		worker := b.Label("worker")
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, 0)
		b.CallC("pthread_create")
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, 1)
		b.CallC("pthread_create")
		emitAllEvents(b)
		// Busy-wait a little so workers finish under the spy.
		loop(b, isa.R8, isa.R11, 3000, func() { b.Nop() })
		b.Hlt()
		b.Bind(worker)
		emitAllEvents(b)
		b.CallC("pthread_exit")

	case ModelProcesses:
		b.CallC("fork")
		emitAllEvents(b)
		b.Hlt()

	case ModelProcessesThreads:
		b.CallC("fork")
		worker := b.Label("worker")
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, 0)
		b.CallC("pthread_create")
		emitAllEvents(b)
		loop(b, isa.R8, isa.R11, 3000, func() { b.Nop() })
		b.Hlt()
		b.Bind(worker)
		emitAllEvents(b)
		b.CallC("pthread_exit")
	}
	return b.Build()
}
