package workload_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/workload"
)

func probeSpecs(t *testing.T) []workload.ProbeSpec {
	t.Helper()
	var specs []workload.ProbeSpec
	for _, kind := range workload.ProbeKinds() {
		specs = append(specs,
			workload.DefaultProbeSpec(kind, workload.SizeSmall),
			workload.DefaultProbeSpec(kind, workload.SizeLarge))
	}
	return specs
}

// TestProbeMemoryChannel runs every probe bare (no spy) and checks the
// guest's out[] array — the per-trial final sums — against the emitted
// model tree's prediction f(i,j) = n - |leaves(LCA(i,j))|. This
// validates the FPRev input construction and the kernel emission
// independently of any tracing.
func TestProbeMemoryChannel(t *testing.T) {
	for _, spec := range probeSpecs(t) {
		spec := spec
		t.Run(string(spec.Kind)+"/n="+itoa(spec.N), func(t *testing.T) {
			t.Parallel()
			probe, err := workload.BuildProbe(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fpspy.Run(probe.Prog, fpspy.Options{NoSpy: true})
			if err != nil {
				t.Fatal(err)
			}
			out, err := workload.ProbeOut(res.Proc.Mem, probe.OutAddr, probe.Trials)
			if err != nil {
				t.Fatal(err)
			}
			for tr, pr := range analysis.ProbePairs(spec.N) {
				want := float64(spec.N - probe.Emitted.LCASize(pr[0], pr[1]))
				if out[tr] != want {
					t.Fatalf("trial (%d,%d): guest sum = %v, model predicts %v", pr[0], pr[1], out[tr], want)
				}
			}
		})
	}
}

// TestProbeTraceRecoversEmittedTree runs every probe under the spy in
// unsampled individual mode and requires the tree recovered from the
// trace to equal the emitted tree exactly — the end-to-end contract the
// conformance suite is built on. For every kind except the negative
// control the emitted tree is also the documented Expected tree.
func TestProbeTraceRecoversEmittedTree(t *testing.T) {
	for _, spec := range probeSpecs(t) {
		spec := spec
		t.Run(string(spec.Kind)+"/n="+itoa(spec.N), func(t *testing.T) {
			t.Parallel()
			probe, err := workload.BuildProbe(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fpspy.Run(probe.Prog, fpspy.Options{
				Config: fpspy.Config{Mode: fpspy.ModeIndividual, ExceptList: fpspy.AllEvents},
			})
			if err != nil {
				t.Fatal(err)
			}
			recs, err := res.Records()
			if err != nil {
				t.Fatal(err)
			}
			tree, err := analysis.RecoverProbeTree(recs)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := tree.Canonical(), probe.Emitted.Canonical(); got != want {
				t.Fatalf("recovered tree %s, emitted %s", got, want)
			}
			honest := spec.Kind != workload.ProbeBrokenReassoc
			if match := tree.Fingerprint() == probe.Expected.Fingerprint(); match != honest {
				t.Fatalf("fingerprint match = %v for kind %s (want %v)", match, spec.Kind, honest)
			}
		})
	}
}

// TestProbeRegistry checks the probe suite is registered: seven kinds,
// buildable at both sizes, under the probe suite tag.
func TestProbeRegistry(t *testing.T) {
	probes := workload.Probes()
	if len(probes) != len(workload.ProbeKinds()) {
		t.Fatalf("registry has %d probes, want %d", len(probes), len(workload.ProbeKinds()))
	}
	for _, w := range probes {
		for _, size := range []workload.Size{workload.SizeSmall, workload.SizeLarge} {
			if p := w.Build(size); p == nil || len(p.Insts) == 0 {
				t.Fatalf("%s: empty build", w.Meta.Name)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
