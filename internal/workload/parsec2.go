package workload

import (
	"repro/internal/isa"
)

// ExtBarnes: Barnes-Hut n-body — softened gravity over adjacent pairs
// with a tree-opening criterion (compare + sqrt + divide).
var ExtBarnes = register(&Workload{
	Meta:  parsecMeta("ext/barnes"),
	Build: buildExtBarnes,
})

func buildExtBarnes(size Size) *isa.Program {
	bodies := int64(64)
	steps := int64(12)
	if size == SizeSmall {
		bodies, steps = 24, 4
	}
	b := isa.NewBuilder("ext-barnes")
	posInit := make([]float64, bodies)
	velInit := make([]float64, bodies)
	for i := range posInit {
		posInit[i] = 0.23 * float64(i%19)
		velInit[i] = 0.0
	}
	pos := b.Float64s(posInit...)
	vel := b.Float64s(velInit...)
	fconst(b, 7, 1e-3) // G*dt

	loop(b, isa.R13, isa.R11, steps, func() {
		b.Movi(isa.R9, int64(pos))
		b.Movi(isa.R10, int64(vel))
		loop(b, isa.R8, isa.R12, bodies-1, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(0, isa.R6, 0)
			b.Fld(1, isa.R6, 8)
			b.FP2(isa.OpSUBSD, 2, 1, 0) // dx
			b.FP2(isa.OpMULSD, 3, 2, 2)
			fconst(b, 4, 0.05)
			b.FP2(isa.OpADDSD, 3, 3, 4) // softened r^2
			b.FP1(isa.OpSQRTSD, 4, 3)
			b.FP2(isa.OpMULSD, 3, 3, 4) // r^3
			b.FP2(isa.OpDIVSD, 2, 2, 3) // acc
			b.FP2(isa.OpMULSD, 2, 2, 7)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(5, isa.R6, 0)
			b.FP2(isa.OpADDSD, 5, 5, 2)
			b.Fst(isa.R6, 0, 5)
			// Tree-opening criterion: the hot Barnes-Hut decision of
			// whether a cell is far enough for its center of mass.
			fconst(b, 6, 4.0)
			b.Ucomi(isa.OpUCOMISD, isa.R6, 3, 6)
		})
		// Position integration pass: x += v dt.
		fconst(b, 6, 0.01)
		loop(b, isa.R8, isa.R12, bodies, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(5, isa.R6, 0)
			b.FP2(isa.OpMULSD, 5, 5, 6)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(0, isa.R6, 0)
			b.FP2(isa.OpADDSD, 0, 0, 5)
			b.Fst(isa.R6, 0, 0)
		})
	})
	b.Hlt()
	return b.Build()
}

// oceanKernel builds the two SPLASH ocean variants: red-black SOR for
// the contiguous-partition version, plain Jacobi for the
// non-contiguous one.
func oceanKernel(name string, redBlack bool) func(Size) *isa.Program {
	return func(size Size) *isa.Program {
		n := int64(64)
		sweeps := int64(25)
		if size == SizeSmall {
			n, sweeps = 24, 8
		}
		b := isa.NewBuilder(name)
		gridInit := make([]float64, n)
		for i := range gridInit {
			gridInit[i] = 0.01 * float64(i%23)
		}
		grid := b.Float64s(gridInit...)
		fconst(b, 7, 0.45) // relaxation factor
		stride := int64(1)
		if redBlack {
			stride = 2
		}
		loop(b, isa.R13, isa.R11, sweeps, func() {
			for phase := int64(0); phase < stride; phase++ {
				phase := phase
				b.Movi(isa.R9, int64(grid)+phase*8)
				loop(b, isa.R8, isa.R12, (n-2)/stride, func() {
					b.Movi(isa.R6, stride*8)
					b.Mulq(isa.R7, isa.R8, isa.R6)
					b.Add(isa.R7, isa.R7, isa.R9)
					b.Fld(0, isa.R7, 0)
					b.Fld(1, isa.R7, 16)
					b.FP2(isa.OpADDSD, 0, 0, 1)
					b.FP2(isa.OpMULSD, 0, 0, 7)
					b.Fld(1, isa.R7, 8)
					fconst(b, 2, 0.1)
					b.FP2(isa.OpMULSD, 1, 1, 2)
					b.FP2(isa.OpADDSD, 0, 0, 1)
					b.Fst(isa.R7, 8, 0)
				})
			}
			// Divergence diagnostic after each sweep: the squared-residual
			// norm of neighbor differences (the convergence check the
			// SPLASH code reports).
			fconst(b, 5, 0.0)
			b.Movi(isa.R9, int64(grid))
			loop(b, isa.R8, isa.R12, n-1, func() {
				b.Shli(isa.R7, isa.R8, 3)
				b.Add(isa.R7, isa.R7, isa.R9)
				b.Fld(0, isa.R7, 0)
				b.Fld(1, isa.R7, 8)
				b.FP2(isa.OpSUBSD, 0, 1, 0)
				b.FP2(isa.OpMULSD, 0, 0, 0)
				b.FP2(isa.OpADDSD, 5, 5, 0)
			})
			b.FP1(isa.OpSQRTSD, 5, 5) // residual norm
		})
		b.Hlt()
		return b.Build()
	}
}

// ExtOceanCP and ExtOceanNCP: the two ocean circulation variants.
var (
	ExtOceanCP  = register(&Workload{Meta: parsecMeta("ext/ocean_cp"), Build: oceanKernel("ext-ocean_cp", true)})
	ExtOceanNCP = register(&Workload{Meta: parsecMeta("ext/ocean_ncp"), Build: oceanKernel("ext-ocean_ncp", false)})
)

// ExtRadiosity: hierarchical radiosity — form factors between patch
// pairs (area / pi r^2 with visibility weighting).
var ExtRadiosity = register(&Workload{
	Meta:  parsecMeta("ext/radiosity"),
	Build: buildExtRadiosity,
})

func buildExtRadiosity(size Size) *isa.Program {
	patches := int64(56)
	if size == SizeSmall {
		patches = 20
	}
	b := isa.NewBuilder("ext-radiosity")
	areaInit := make([]float64, patches)
	for i := range areaInit {
		areaInit[i] = 0.4 + 0.07*float64(i%9)
	}
	area := b.Float64s(areaInit...)
	fconst(b, 7, 3.141592653589793)
	fconst(b, 6, 0.0) // radiosity accumulator

	// Radiosity gathering: B_i = E + rho * sum_j F_ij B_j, iterated to
	// convergence over the patch graph.
	radio := b.Zeros(int(patches) * 8)
	fconst(b, 5, 0.7)                     // reflectance rho
	loop(b, isa.R10, isa.R14, 3, func() { // gather iterations
		loop(b, isa.R13, isa.R11, patches, func() {
			b.Movi(isa.R9, int64(area))
			fconst(b, 6, 0.05) // emission E
			loop(b, isa.R8, isa.R12, patches, func() {
				// Form factor F_ij = area_j / (pi (1 + (i-j)^2)).
				b.Sub(isa.R7, isa.R13, isa.R8)
				b.Mulq(isa.R7, isa.R7, isa.R7)
				b.Addi(isa.R7, isa.R7, 1)
				b.Cvt(isa.OpCVTSI2SD, 0, isa.R7)
				b.FP2(isa.OpMULSD, 0, 0, 7) // pi r^2
				b.Shli(isa.R7, isa.R8, 3)
				b.Add(isa.R7, isa.R7, isa.R9)
				b.Fld(1, isa.R7, 0) // area_j
				b.FP2(isa.OpDIVSD, 1, 1, 0)
				// Weight by the neighbor's current radiosity.
				b.Movi(isa.R6, int64(radio))
				b.Shli(isa.R7, isa.R8, 3)
				b.Add(isa.R7, isa.R7, isa.R6)
				b.Fld(2, isa.R7, 0)
				b.FP2(isa.OpMULSD, 1, 1, 2)
				b.FP2(isa.OpMULSD, 1, 1, 5) // * rho
				b.FP2(isa.OpADDSD, 6, 6, 1)
			})
			b.Movi(isa.R6, int64(radio))
			b.Shli(isa.R7, isa.R13, 3)
			b.Add(isa.R7, isa.R7, isa.R6)
			b.Fst(isa.R7, 0, 6) // B_i updated
		})
	})
	b.Hlt()
	return b.Build()
}

// ExtRadix: radix sort — integer counting passes with one final load
// balance statistic in floating point.
var ExtRadix = register(&Workload{
	Meta:  parsecMeta("ext/radix"),
	Build: buildExtRadix,
})

func buildExtRadix(size Size) *isa.Program {
	n := int64(6000)
	if size == SizeSmall {
		n = 1500
	}
	b := isa.NewBuilder("ext-radix")
	hist := b.Zeros(16 * 8)
	b.Movi(isa.R9, 97)
	for digit := 0; digit < 4; digit++ {
		shift := int64(60 - 4*digit)
		b.Movi(isa.R10, 97) // regenerate the same key stream per pass
		loop(b, isa.R13, isa.R11, n/4, func() {
			lcgStep(b, isa.R10)
			b.Shri(isa.R7, isa.R10, shift)
			b.Movi(isa.R6, 0xF)
			b.And(isa.R7, isa.R7, isa.R6)
			b.Shli(isa.R7, isa.R7, 3)
			b.Movi(isa.R6, int64(hist))
			b.Add(isa.R7, isa.R7, isa.R6)
			b.Ld(isa.R12, isa.R7, 0)
			b.Addi(isa.R12, isa.R12, 1)
			b.St(isa.R7, 0, isa.R12)
		})
	}
	// Load balance statistic.
	b.Movi(isa.R9, int64(hist))
	b.Ld(isa.R7, isa.R9, 0)
	b.Cvt(isa.OpCVTSI2SD, 0, isa.R7)
	b.Movi(isa.R6, n)
	b.Cvt(isa.OpCVTSI2SD, 1, isa.R6)
	b.FP2(isa.OpDIVSD, 0, 0, 1)
	b.Hlt()
	return b.Build()
}

// Raytrace: sphere intersection — per-ray quadratic discriminant with
// sqrt and reciprocal.
var Raytrace = register(&Workload{
	Meta:  parsecMetaRefs("raytrace", "pthread_create"),
	Build: buildRaytrace,
})

func buildRaytrace(size Size) *isa.Program {
	rays := int64(400)
	if size == SizeSmall {
		rays = 120
	}
	b := isa.NewBuilder("raytrace")
	// Graphics code: single precision throughout (the ss forms).
	consts := b.Float32s(2.0, 0.4, 1.3, 0.9)
	b.Movi(isa.R10, int64(consts))
	b.Movi(isa.R9, 1234321)
	loop(b, isa.R13, isa.R11, rays, func() {
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 0, isa.R9)  // direction component (f64)
		b.Cvt(isa.OpCVTSD2SS, 0, 0) // narrow to f32 (rounds)
		b.Flds(1, isa.R10, 0)       // 2.0
		b.FP2(isa.OpMULSS, 2, 0, 1) // b-coefficient
		b.FP2(isa.OpMULSS, 3, 2, 2) // b^2
		b.Flds(1, isa.R10, 4)       // 0.4
		b.FP2(isa.OpSUBSS, 3, 3, 1) // disc = b^2 - 4ac
		b.FP2(isa.OpMULSS, 3, 3, 3) // disc^2 >= 0
		b.FP1(isa.OpSQRTSS, 4, 3)   // |disc|
		b.FP2(isa.OpSUBSS, 4, 2, 4) // t = b - sqrt
		b.Flds(1, isa.R10, 8)       // 1.3
		b.FP2(isa.OpDIVSS, 4, 4, 1) // normalize by direction length
		b.Flds(1, isa.R10, 12)      // 0.9
		b.FP2(isa.OpADDSS, 4, 4, 1) // shade accumulate
	})
	b.Hlt()
	return b.Build()
}

// Streamcluster: online k-median — distance sums with running minimum
// selection.
var Streamcluster = register(&Workload{
	Meta:  parsecMetaRefs("streamcluster", "pthread_create"),
	Build: buildStreamcluster,
})

func buildStreamcluster(size Size) *isa.Program {
	points := int64(200)
	centers := int64(8)
	if size == SizeSmall {
		points, centers = 60, 4
	}
	b := isa.NewBuilder("streamcluster")
	centInit := make([]float64, centers)
	for i := range centInit {
		centInit[i] = float64(i) * 1.3
	}
	cent := b.Float64s(centInit...)
	b.Movi(isa.R9, 5150)
	fconst(b, 6, 0.0) // total cost
	loop(b, isa.R13, isa.R11, points, func() {
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 0, isa.R9)
		fconst(b, 1, 10.0)
		b.FP2(isa.OpMULSD, 0, 0, 1) // point coordinate
		fconst(b, 5, 1e30)          // best distance
		b.Movi(isa.R10, int64(cent))
		loop(b, isa.R8, isa.R12, centers, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fld(1, isa.R7, 0)
			b.FP2(isa.OpSUBSD, 2, 0, 1)
			b.FP2(isa.OpMULSD, 2, 2, 2)
			b.FP2(isa.OpMINSD, 5, 5, 2)
		})
		// Online facility opening: when the best assignment cost
		// exceeds the opening threshold, the point becomes a new center
		// (overwriting round-robin — the stream is unbounded but the
		// center budget is fixed).
		fconst(b, 2, 9.0) // opening cost threshold
		b.Ucomi(isa.OpUCOMISD, isa.R7, 5, 2)
		noOpen := b.Label("noopen")
		b.Movi(isa.R6, 1)
		b.Blt(isa.R7, isa.R6, noOpen) // best < threshold: assign
		b.Movi(isa.R6, int64(centers))
		b.Remq(isa.R7, isa.R13, isa.R6)
		b.Shli(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R7, isa.R10)
		b.Fst(isa.R7, 0, 0) // open a center at the point
		fconst(b, 5, 0.25)  // pay the (normalized) opening cost instead
		b.Bind(noOpen)
		b.FP2(isa.OpADDSD, 6, 6, 5)
	})
	b.Hlt()
	return b.Build()
}

// Swaptions: HJM short-rate Monte Carlo — mean-reverting path updates.
var Swaptions = register(&Workload{
	Meta:  parsecMetaRefs("swaptions", "pthread_create"),
	Build: buildSwaptions,
})

func buildSwaptions(size Size) *isa.Program {
	paths := int64(80)
	horizon := int64(24)
	if size == SizeSmall {
		paths, horizon = 24, 8
	}
	b := isa.NewBuilder("swaptions")
	b.Movi(isa.R9, 20080915)
	fconst(b, 6, 0.0) // payer accumulator
	b.Movapd(7, 6)    // receiver accumulator
	b.Movapd(9, 6)    // sum of squares
	loop(b, isa.R13, isa.R11, paths, func() {
		fconst(b, 0, 0.05) // r
		loop(b, isa.R8, isa.R12, horizon, func() {
			lcgStep(b, isa.R9)
			lcgToUnitF64(b, 1, isa.R9)
			fconst(b, 2, 0.5)
			b.FP2(isa.OpSUBSD, 1, 1, 2) // dW in [-0.5, 0.5)
			fconst(b, 2, 0.04)
			b.FP2(isa.OpSUBSD, 3, 2, 0) // (b - r)
			fconst(b, 2, 0.3)
			b.FP2(isa.OpMULSD, 3, 3, 2) // a(b-r)
			fconst(b, 2, 0.02)
			b.FP2(isa.OpMULSD, 1, 1, 2) // sigma dW
			b.FP2(isa.OpADDSD, 0, 0, 3)
			b.FP2(isa.OpADDSD, 0, 0, 1)
		})
		// Payer and receiver payoffs against the strike, discounted by
		// the path's terminal rate over a 5-year tenor (exp via series).
		fconst(b, 1, 0.045)         // strike
		b.FP2(isa.OpSUBSD, 2, 0, 1) // r - K
		fconst(b, 1, 0.0)
		b.FP2(isa.OpMAXSD, 3, 2, 1) // payer payoff
		b.FP2(isa.OpSUBSD, 2, 1, 2)
		b.FP2(isa.OpMAXSD, 2, 2, 1) // receiver payoff
		// discount factor exp(-r) per annum (series valid for |r| <= 1)
		fconst(b, 1, -1.0)
		b.FP2(isa.OpMULSD, 4, 0, 1)
		expSeries(b, 5, 4)
		b.FP2(isa.OpMULSD, 3, 3, 5)
		b.FP2(isa.OpMULSD, 2, 2, 5)
		b.FP2(isa.OpADDSD, 6, 6, 3) // accumulate payer value
		b.FP2(isa.OpADDSD, 7, 7, 2) // accumulate receiver value
		b.FP2(isa.OpMULSD, 8, 3, 3) // sum of squares for the stderr
		b.FP2(isa.OpADDSD, 9, 9, 8)
	})
	// Mean and standard error of the payer value.
	fconst(b, 1, float64(paths))
	b.FP2(isa.OpDIVSD, 6, 6, 1) // mean
	b.FP2(isa.OpDIVSD, 9, 9, 1) // E[x^2]
	b.FP2(isa.OpMULSD, 8, 6, 6)
	b.FP2(isa.OpSUBSD, 9, 9, 8) // variance
	fconst(b, 1, 0.0)
	b.FP2(isa.OpMAXSD, 9, 9, 1) // clamp tiny negative variance
	b.FP1(isa.OpSQRTSD, 9, 9)   // stderr * sqrt(n)
	b.Hlt()
	return b.Build()
}

// Vips: image pipeline — separable single-precision convolution over a
// scanline.
var Vips = register(&Workload{
	Meta:  parsecMetaRefs("vips", "fork", "sigaction"),
	Build: buildVips,
})

func buildVips(size Size) *isa.Program {
	width := int64(256)
	rows := int64(20)
	if size == SizeSmall {
		width, rows = 64, 8
	}
	b := isa.NewBuilder("vips")
	line := make([]float32, width)
	for i := range line {
		line[i] = 0.003921569 * float32(i%255)
	}
	img := b.Float32s(line...)
	kern := b.Float32s(0.25, 0.5, 0.25)

	loop(b, isa.R13, isa.R11, rows, func() {
		b.Movi(isa.R9, int64(img))
		b.Movi(isa.R10, int64(kern))
		loop(b, isa.R8, isa.R12, width-2, func() {
			b.Shli(isa.R7, isa.R8, 2)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Flds(0, isa.R7, 0)
			b.Flds(1, isa.R10, 0)
			b.FP2(isa.OpMULSS, 4, 0, 1)
			b.Flds(0, isa.R7, 4)
			b.Flds(1, isa.R10, 4)
			b.FP2(isa.OpMULSS, 5, 0, 1)
			b.FP2(isa.OpADDSS, 4, 4, 5)
			b.Flds(0, isa.R7, 8)
			b.Flds(1, isa.R10, 8)
			b.FP2(isa.OpMULSS, 5, 0, 1)
			b.FP2(isa.OpADDSS, 4, 4, 5)
			// Quantize back to the 8-bit pixel range (rounds).
			b.Cvt(isa.OpCVTSS2SI, isa.R6, 4)
			b.Fsts(isa.R7, 4, 4)
		})
	})
	b.Hlt()
	return b.Build()
}

// ExtVolrend: volume rendering — front-to-back alpha compositing along
// rays in single precision.
var ExtVolrend = register(&Workload{
	Meta:  parsecMeta("ext/volrend"),
	Build: buildExtVolrend,
})

func buildExtVolrend(size Size) *isa.Program {
	rays := int64(120)
	depth := int64(16)
	if size == SizeSmall {
		rays, depth = 40, 8
	}
	b := isa.NewBuilder("ext-volrend")
	b.Movi(isa.R9, 60486048)
	loop(b, isa.R13, isa.R11, rays, func() {
		// accumulated color x4, transparency x5 (f32 lane 0).
		b.Movi(isa.R6, int64(f32bits(0.0)))
		b.Movqx(4, isa.R6)
		b.Movi(isa.R6, int64(f32bits(1.0)))
		b.Movqx(5, isa.R6)
		loop(b, isa.R8, isa.R12, depth, func() {
			lcgStep(b, isa.R9)
			b.Shri(isa.R7, isa.R9, 40)
			b.Movi(isa.R6, 0xFF)
			b.And(isa.R7, isa.R7, isa.R6)
			b.Cvt(isa.OpCVTSI2SS, 0, isa.R7) // voxel density
			b.Movi(isa.R6, int64(f32bits(1.0/512.0)))
			b.Movqx(1, isa.R6)
			b.FP2(isa.OpMULSS, 0, 0, 1) // alpha
			b.FP2(isa.OpMULSS, 2, 0, 5) // alpha * transparency
			b.FP2(isa.OpADDSS, 4, 4, 2) // color accumulate
			b.FP2(isa.OpSUBSS, 5, 5, 2) // transparency shrink
			// Early ray termination: once the accumulated opacity makes
			// further samples invisible, stop marching this ray.
			b.Movi(isa.R6, int64(f32bits(0.02)))
			b.Movqx(3, isa.R6)
			b.Ucomi(isa.OpUCOMISS, isa.R6, 5, 3)
			cont := b.Label("continue")
			b.Movi(isa.R7, 0)
			b.Bge(isa.R6, isa.R7, cont) // transparency >= threshold
			b.Mov(isa.R8, isa.R12)      // terminate: cursor to limit
			b.Addi(isa.R8, isa.R8, -1)
			b.Bind(cont)
		})
	})
	b.Hlt()
	return b.Build()
}

// ExtWaterNsquared: all-pairs water simulation. Distant pair dispersion
// terms (r^-12 built by repeated squaring of tiny reciprocals) underflow
// completely — Underflow with no denormal operands, matching Figure 10.
var ExtWaterNsquared = register(&Workload{
	Meta:  parsecMeta("ext/water_nsquared"),
	Build: buildExtWaterNsquared,
})

func buildExtWaterNsquared(size Size) *isa.Program {
	mols := int64(40)
	if size == SizeSmall {
		mols = 16
	}
	b := isa.NewBuilder("ext-water_nsquared")
	posInit := make([]float64, mols)
	for i := range posInit {
		// Two far clusters: intra-cluster distances ~1, inter ~1e28 —
		// far enough that r^-12 underflows *completely* (straight to
		// zero, never pausing in the denormal range).
		if i%2 == 0 {
			posInit[i] = 0.8 * float64(i)
		} else {
			posInit[i] = 1e28 + 0.8*float64(i)
		}
	}
	pos := b.Float64s(posInit...)
	fconst(b, 7, 4.0) // LJ epsilon scale

	loop(b, isa.R13, isa.R11, mols-1, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(pos))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fld(0, isa.R7, 0)
		b.Fld(1, isa.R7, 8)
		b.FP2(isa.OpSUBSD, 2, 1, 0) // dx (~1e26 for cross pairs)
		b.FP2(isa.OpMULSD, 2, 2, 2) // r^2
		fconst(b, 3, 0.5)
		b.FP2(isa.OpADDSD, 2, 2, 3)
		fconst(b, 3, 1.0)
		b.FP2(isa.OpDIVSD, 2, 3, 2) // rinv2 (~1e-53)
		b.FP2(isa.OpMULSD, 3, 2, 2) // rinv4 (~1e-106)
		b.FP2(isa.OpMULSD, 3, 3, 3) // rinv8 (~1e-212)
		b.FP2(isa.OpMULSD, 3, 3, 2) // rinv10... continues
		b.FP2(isa.OpMULSD, 3, 3, 2) // rinv12: ~1e-318 -> underflow
		b.FP2(isa.OpMULSD, 3, 3, 7)
	})
	b.Hlt()
	return b.Build()
}

// ExtWaterSpatial: the cell-list variant — cutoff excludes the far
// pairs, so no underflow, just rounding.
var ExtWaterSpatial = register(&Workload{
	Meta:  parsecMeta("ext/water_spatial"),
	Build: buildExtWaterSpatial,
})

func buildExtWaterSpatial(size Size) *isa.Program {
	mols := int64(48)
	if size == SizeSmall {
		mols = 16
	}
	b := isa.NewBuilder("ext-water_spatial")
	posInit := make([]float64, mols)
	for i := range posInit {
		posInit[i] = 0.9 * float64(i%7)
	}
	pos := b.Float64s(posInit...)
	fconst(b, 7, 4.0)
	loop(b, isa.R13, isa.R11, mols-1, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(pos))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fld(0, isa.R7, 0)
		b.Fld(1, isa.R7, 8)
		b.FP2(isa.OpSUBSD, 2, 1, 0)
		b.FP2(isa.OpMULSD, 2, 2, 2)
		fconst(b, 3, 0.5)
		b.FP2(isa.OpADDSD, 2, 2, 3)
		fconst(b, 3, 1.0)
		b.FP2(isa.OpDIVSD, 2, 3, 2)
		b.FP2(isa.OpMULSD, 3, 2, 2)
		b.FP2(isa.OpMULSD, 3, 3, 2)
		b.FP2(isa.OpMULSD, 3, 3, 7)
	})
	b.Hlt()
	return b.Build()
}

// X264: video encoding — integer SAD motion estimation; the rate
// control's first-frame statistics divide zero encoded bits by zero
// macroblocks (0/0, Invalid).
var X264 = register(&Workload{
	Meta:  parsecMetaRefs("x.264", "pthread_create", "SIGFPE", "SIGTRAP"),
	Build: buildX264,
})

func buildX264(size Size) *isa.Program {
	blocks := int64(3000)
	if size == SizeSmall {
		blocks = 800
	}
	b := isa.NewBuilder("x264")
	// Rate control bootstrap: bits/macroblocks with both still zero.
	b.Movqx(0, isa.R0)
	b.Movqx(1, isa.R0)
	b.FP2(isa.OpDIVSD, 2, 0, 1) // 0/0: Invalid
	fconst(b, 3, 1.0)
	b.FP2(isa.OpMINSD, 2, 2, 3) // NaN washes out to the default QP scale

	// A lookahead thread handles half the motion estimation (x264's
	// real threading model), joined before rate-control update.
	worker := b.Label("lookahead")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Mov(isa.R11, isa.R1) // worker tid

	// Motion estimation: integer SAD over synthetic blocks.
	b.Movi(isa.R9, 26262)
	b.Movi(isa.R10, 0) // SAD accumulator
	loop(b, isa.R13, isa.R12, blocks/2, func() {
		lcgStep(b, isa.R9)
		b.Shri(isa.R7, isa.R9, 56)
		b.Add(isa.R10, isa.R10, isa.R7)
	})
	b.Mov(isa.R1, isa.R11)
	b.CallC("pthread_join")
	// Bitrate estimate update (rounding): bits per second at 29.97 fps.
	b.Cvt(isa.OpCVTSI2SD, 0, isa.R10)
	fconst(b, 1, 29.97)
	b.FP2(isa.OpDIVSD, 0, 0, 1)
	b.FP2(isa.OpMULSD, 0, 0, 2)
	b.Hlt()

	// Lookahead worker: the other half of the SAD work (integer only).
	b.Bind(worker)
	b.Movi(isa.R9, 62626)
	b.Movi(isa.R10, 0)
	loop(b, isa.R13, isa.R12, blocks/2, func() {
		lcgStep(b, isa.R9)
		b.Shri(isa.R7, isa.R9, 56)
		b.Add(isa.R10, isa.R10, isa.R7)
	})
	b.CallC("pthread_exit")
	return b.Build()
}
