package workload

import (
	"repro/internal/isa"
)

// The NAS 3.0 kernels. The paper's Figure 9 shows the entire suite is
// well behaved: every kernel produces only Inexact. The miniatures below
// keep all values comfortably normal, so that property arises naturally.

func nasMeta(name, problem string) Meta {
	return Meta{
		Name: name, Suite: SuiteNAS,
		Languages: "Fortran/C", LOC: 21_000 / 8,
		Problem: problem, Concurrency: "openmp",
		ExecTime: "4m 50.443s (suite)",
	}
}

// NASEP: embarrassingly parallel — accept/reject sampling of unit-square
// points with a square-root transform of the accepted radii.
var NASEP = register(&Workload{
	Meta:  nasMeta("nas-ep", "Problem Size 1"),
	Build: buildNASEP,
})

func buildNASEP(size Size) *isa.Program {
	n := int64(4000)
	if size == SizeSmall {
		n = 800
	}
	b := isa.NewBuilder("nas-ep")
	b.Movi(isa.R9, 12345)
	fconst(b, 5, 0.0) // sum of radii
	loop(b, isa.R13, isa.R11, n, func() {
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 0, isa.R9) // u in [0,1)
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 1, isa.R9) // v
		b.FP2(isa.OpMULSD, 2, 0, 0)
		b.FP2(isa.OpMULSD, 3, 1, 1)
		b.FP2(isa.OpADDSD, 2, 2, 3) // t = u^2+v^2
		fconst(b, 3, 1.0)
		b.Ucomi(isa.OpUCOMISD, isa.R8, 2, 3)
		reject := b.Label("reject")
		b.Movi(isa.R7, 0)
		b.Bge(isa.R8, isa.R7, reject) // t >= 1: reject
		b.FP1(isa.OpSQRTSD, 4, 2)
		b.FP2(isa.OpADDSD, 5, 5, 4)
		// Histogram the radius: scale, round to the bin grid, truncate
		// to the bin index (both round).
		fconst(b, 3, 10.0)
		b.FP2(isa.OpMULSD, 4, 4, 3)
		b.Round(isa.OpROUNDSD, 3, 4, isa.RoundImmNearest)
		b.Cvt(isa.OpCVTTSD2SI, isa.R7, 4)
		b.Bind(reject)
	})
	b.Hlt()
	return b.Build()
}

// NASMG: multigrid — one-dimensional V-cycle: smooth, restrict to a
// coarse grid, solve, prolongate, correct.
var NASMG = register(&Workload{
	Meta:  nasMeta("nas-mg", "Problem Size 1"),
	Build: buildNASMG,
})

func buildNASMG(size Size) *isa.Program {
	n := int64(128)
	cycles := int64(20)
	if size == SizeSmall {
		n, cycles = 32, 6
	}
	b := isa.NewBuilder("nas-mg")
	fineInit := make([]float64, n)
	for i := range fineInit {
		fineInit[i] = float64(i%13) * 0.077
	}
	fine := b.Float64s(fineInit...)
	coarse := b.Zeros(int(n/2) * 8)

	fconst(b, 7, 0.5)
	loop(b, isa.R13, isa.R11, cycles, func() {
		// Smooth on the fine grid.
		b.Movi(isa.R9, int64(fine))
		loop(b, isa.R8, isa.R12, n-2, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.Fld(1, isa.R7, 16)
			b.FP2(isa.OpADDSD, 0, 0, 1)
			b.FP2(isa.OpMULSD, 0, 0, 7)
			b.Fst(isa.R7, 8, 0)
		})
		// Restrict: coarse[i] = 0.5*(fine[2i] + fine[2i+1]).
		b.Movi(isa.R9, int64(fine))
		b.Movi(isa.R10, int64(coarse))
		loop(b, isa.R8, isa.R12, n/2, func() {
			b.Shli(isa.R7, isa.R8, 4)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.Fld(1, isa.R7, 8)
			b.FP2(isa.OpADDSD, 0, 0, 1)
			b.FP2(isa.OpMULSD, 0, 0, 7)
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fst(isa.R7, 0, 0)
		})
		// Prolongate and correct.
		b.Movi(isa.R9, int64(fine))
		b.Movi(isa.R10, int64(coarse))
		loop(b, isa.R8, isa.R12, n/2, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fld(0, isa.R7, 0)
			fconst(b, 1, 0.01)
			b.FP2(isa.OpMULSD, 0, 0, 1)
			b.Shli(isa.R7, isa.R8, 4)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(1, isa.R7, 0)
			b.FP2(isa.OpADDSD, 1, 1, 0)
			b.Fst(isa.R7, 0, 1)
		})
	})
	b.Hlt()
	return b.Build()
}

// NASCG: conjugate gradient — tridiagonal matvec and dot products, the
// inner kernel of one CG iteration repeated.
var NASCG = register(&Workload{
	Meta:  nasMeta("nas-cg", "Problem Size 1"),
	Build: buildNASCG,
})

func buildNASCG(size Size) *isa.Program {
	n := int64(96)
	iters := int64(40)
	if size == SizeSmall {
		n, iters = 24, 10
	}
	b := isa.NewBuilder("nas-cg")
	xInit := make([]float64, n)
	for i := range xInit {
		xInit[i] = 1.0 / float64(i+2)
	}
	x := b.Float64s(xInit...)
	y := b.Zeros(int(n) * 8)

	loop(b, isa.R13, isa.R11, iters, func() {
		// y = A x with A = tridiag(-1, 2.1, -1).
		b.Movi(isa.R9, int64(x))
		b.Movi(isa.R10, int64(y))
		fconst(b, 7, 2.1)
		loop(b, isa.R8, isa.R12, n-2, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 8)
			b.FP2(isa.OpMULSD, 0, 0, 7)
			b.Fld(1, isa.R7, 0)
			b.FP2(isa.OpSUBSD, 0, 0, 1)
			b.Fld(1, isa.R7, 16)
			b.FP2(isa.OpSUBSD, 0, 0, 1)
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fst(isa.R7, 8, 0)
		})
		// alpha = (x.y)/(y.y); x += alpha*y (scaled correction).
		b.Movi(isa.R9, int64(x))
		b.Movi(isa.R10, int64(y))
		fconst(b, 4, 0.0)
		fconst(b, 5, 1e-12) // regularizer keeps y.y nonzero
		loop(b, isa.R8, isa.R12, n, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(0, isa.R6, 0)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(1, isa.R6, 0)
			b.FP2(isa.OpMULSD, 2, 0, 1)
			b.FP2(isa.OpADDSD, 4, 4, 2)
			b.FP2(isa.OpMULSD, 2, 1, 1)
			b.FP2(isa.OpADDSD, 5, 5, 2)
		})
		b.FP2(isa.OpDIVSD, 4, 4, 5) // alpha
		fconst(b, 3, 0.001)
		b.FP2(isa.OpMULSD, 4, 4, 3)
		b.Movi(isa.R9, int64(x))
		b.Movi(isa.R10, int64(y))
		loop(b, isa.R8, isa.R12, n, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(1, isa.R6, 0)
			b.FP2(isa.OpMULSD, 1, 1, 4)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(0, isa.R6, 0)
			b.FP2(isa.OpADDSD, 0, 0, 1)
			b.Fst(isa.R6, 0, 0)
		})
	})
	b.Hlt()
	return b.Build()
}

// NASFT: Fourier transform — a direct DFT over a small signal using
// rotation recurrences (complex multiply-accumulate).
var NASFT = register(&Workload{
	Meta:  nasMeta("nas-ft", "Problem Size 1"),
	Build: buildNASFT,
})

func buildNASFT(size Size) *isa.Program {
	n := int64(48)
	if size == SizeSmall {
		n = 16
	}
	b := isa.NewBuilder("nas-ft")
	sigInit := make([]float64, n)
	for i := range sigInit {
		sigInit[i] = 0.3 + 0.05*float64(i%7)
	}
	sig := b.Float64s(sigInit...)
	// Rotation for the fundamental frequency: cos/sin of 2*pi/n.
	rot := b.Float64s(0.9914448613738104, 0.13052619222005157)
	out := b.Zeros(int(n) * 16)

	loop(b, isa.R13, isa.R11, n, func() { // for each output bin
		// (c,s) starts at (1,0); accumulate sum of sig[j]*(c,s)^j.
		fconst(b, 0, 1.0) // c
		fconst(b, 1, 0.0) // s
		fconst(b, 4, 0.0) // re
		fconst(b, 5, 0.0) // im
		b.Movi(isa.R10, int64(rot))
		b.Fld(6, isa.R10, 0) // cr
		b.Fld(7, isa.R10, 8) // sr
		b.Movi(isa.R9, int64(sig))
		loop(b, isa.R8, isa.R12, n, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(2, isa.R7, 0) // sig[j]
			b.FP2(isa.OpMULSD, 3, 2, 0)
			b.FP2(isa.OpADDSD, 4, 4, 3) // re += sig*c
			b.FP2(isa.OpMULSD, 3, 2, 1)
			b.FP2(isa.OpADDSD, 5, 5, 3) // im += sig*s
			// Rotate: (c,s) *= (cr,sr).
			b.FP2(isa.OpMULSD, 2, 0, 6)
			b.FP2(isa.OpMULSD, 3, 1, 7)
			b.FP2(isa.OpSUBSD, 2, 2, 3) // c' = c*cr - s*sr
			b.FP2(isa.OpMULSD, 3, 0, 7)
			b.FP2(isa.OpMULSD, 0, 1, 6)
			b.FP2(isa.OpADDSD, 1, 0, 3) // s' = s*cr + c*sr
			b.Movsd(0, 2)
		})
		b.Shli(isa.R7, isa.R13, 4)
		b.Movi(isa.R6, int64(out))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fst(isa.R7, 0, 4)
		b.Fst(isa.R7, 8, 5)
		// Spectrum is archived in single precision (narrowing rounds).
		b.Cvt(isa.OpCVTSD2SS, 3, 4)
	})
	b.Hlt()
	return b.Build()
}

// NASIS: integer sort — bucket counting of LCG keys with a final
// floating point distribution statistic.
var NASIS = register(&Workload{
	Meta:  nasMeta("nas-is", "Problem Size 1"),
	Build: buildNASIS,
})

func buildNASIS(size Size) *isa.Program {
	n := int64(6000)
	if size == SizeSmall {
		n = 1500
	}
	b := isa.NewBuilder("nas-is")
	buckets := b.Zeros(64 * 8)
	b.Movi(isa.R9, 999)
	loop(b, isa.R13, isa.R11, n, func() {
		lcgStep(b, isa.R9)
		b.Shri(isa.R7, isa.R9, 58) // top 6 bits: bucket index
		b.Shli(isa.R7, isa.R7, 3)
		b.Movi(isa.R6, int64(buckets))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Ld(isa.R10, isa.R7, 0)
		b.Addi(isa.R10, isa.R10, 1)
		b.St(isa.R7, 0, isa.R10)
	})
	// Distribution statistic: mean occupancy (the kernel's only FP).
	fconst(b, 0, 0.0)
	b.Movi(isa.R9, int64(buckets))
	loop(b, isa.R8, isa.R11, 64, func() {
		b.Shli(isa.R7, isa.R8, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Ld(isa.R10, isa.R7, 0)
		b.Cvt(isa.OpCVTSI2SD, 1, isa.R10)
		b.FP2(isa.OpADDSD, 0, 0, 1)
	})
	// Sample standard-deviation style divisor (not a power of two, so
	// the statistic actually rounds) plus a square root.
	fconst(b, 1, 63.0)
	b.FP2(isa.OpDIVSD, 0, 0, 1)
	b.FP1(isa.OpSQRTSD, 0, 0)
	b.Hlt()
	return b.Build()
}

// nasLineSolver builds the shared skeleton of the LU/SP/BT pseudo
// applications: forward elimination and back substitution on a
// diagonally dominant banded system, differing in bandwidth and sweep
// count.
func nasLineSolver(name string, band int64, sweeps int64) func(Size) *isa.Program {
	return func(size Size) *isa.Program {
		n := int64(80)
		s := sweeps
		if size == SizeSmall {
			n, s = 24, sweeps/2+1
		}
		b := isa.NewBuilder(name)
		rhsInit := make([]float64, n)
		for i := range rhsInit {
			rhsInit[i] = 0.25 + 0.03*float64(i%9)
		}
		rhs := b.Float64s(rhsInit...)
		diag := 2.5 + float64(band)

		loop(b, isa.R13, isa.R11, s, func() {
			// Forward sweep: rhs[i] -= sum(rhs[i-k])/diag for k=1..band.
			b.Movi(isa.R9, int64(rhs))
			fconst(b, 7, diag)
			loop(b, isa.R8, isa.R12, n-band, func() {
				b.Shli(isa.R7, isa.R8, 3)
				b.Add(isa.R7, isa.R7, isa.R9)
				b.Fld(0, isa.R7, band*8)
				for k := int64(0); k < band; k++ {
					b.Fld(1, isa.R7, k*8)
					fconst(b, 2, 0.33/float64(k+1))
					b.FP2(isa.OpMULSD, 1, 1, 2)
					b.FP2(isa.OpSUBSD, 0, 0, 1)
				}
				b.FP2(isa.OpDIVSD, 0, 0, 7)
				b.Fst(isa.R7, band*8, 0)
			})
			// Back substitution.
			b.Movi(isa.R9, int64(rhs))
			loop(b, isa.R8, isa.R12, n-band, func() {
				b.Movi(isa.R6, n-1)
				b.Sub(isa.R7, isa.R6, isa.R8) // i = n-1-j
				b.Shli(isa.R7, isa.R7, 3)
				b.Add(isa.R7, isa.R7, isa.R9)
				b.Fld(0, isa.R7, 0)
				b.Fld(1, isa.R7, -8)
				fconst(b, 2, 0.15)
				b.FP2(isa.OpMULSD, 1, 1, 2)
				b.FP2(isa.OpADDSD, 0, 0, 1)
				b.Fst(isa.R7, 0, 0)
			})
		})
		b.Hlt()
		return b.Build()
	}
}

// NASLU, NASSP and NASBT: the three pseudo-applications, as banded line
// solvers of increasing bandwidth.
var (
	NASLU = register(&Workload{Meta: nasMeta("nas-lu", "Problem Size 1"), Build: nasLineSolver("nas-lu", 1, 30)})
	NASSP = register(&Workload{Meta: nasMeta("nas-sp", "Problem Size 1"), Build: nasLineSolver("nas-sp", 2, 24)})
	NASBT = register(&Workload{Meta: nasMeta("nas-bt", "Problem Size 1"), Build: nasLineSolver("nas-bt", 3, 18)})
)
