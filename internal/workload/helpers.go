package workload

import (
	"math"

	"repro/internal/isa"
)

// f32bits returns the binary32 pattern of v, for movqx-style immediates.
func f32bits(v float32) uint32 { return math.Float32bits(v) }

// fconst loads a binary64 immediate into lane 0 of a vector register,
// using scratch integer register r6.
func fconst(b *isa.Builder, x int, v float64) {
	b.Movi(isa.R6, int64(math.Float64bits(v)))
	b.Movqx(x, isa.R6)
}

// loop emits a counted loop: cnt runs 0..n-1, limit holds n. The body
// must preserve both registers.
func loop(b *isa.Builder, cnt, limit int, n int64, body func()) {
	b.Movi(cnt, 0)
	b.Movi(limit, n)
	top := b.Label("loop")
	b.Bind(top)
	body()
	b.Addi(cnt, cnt, 1)
	b.Blt(cnt, limit, top)
}

// whileLt emits a loop that runs while cnt < limit, where the body
// updates cnt itself.
func whileLt(b *isa.Builder, cnt, limit int, body func()) {
	top := b.Label("while")
	done := b.Label("done")
	b.Bind(top)
	b.Bge(cnt, limit, done)
	body()
	b.Jmp(top)
	b.Bind(done)
}

// lcgStep advances a linear congruential generator in reg (Numerical
// Recipes constants), using r6 as scratch.
func lcgStep(b *isa.Builder, reg int) {
	b.Movi(isa.R6, 6364136223846793005)
	b.Mulq(reg, reg, isa.R6)
	b.Movi(isa.R6, 1442695040888963407)
	b.Add(reg, reg, isa.R6)
}

// lcgToUnitF64 converts the LCG state in reg to a float64 in [0,1) in
// lane 0 of x, using r6/r7 as scratch: take the top 52 bits and scale.
func lcgToUnitF64(b *isa.Builder, x, reg int) {
	b.Shri(isa.R7, reg, 12)
	b.Cvt(isa.OpCVTSI2SDQ, x, isa.R7)
	b.Movi(isa.R6, int64(math.Float64bits(1.0/(1<<52))))
	b.Movqx(15, isa.R6)
	b.FP2(isa.OpMULSD, x, x, 15)
}

// busywork emits n straight-line integer instructions, modeling the
// address arithmetic, gathers and branch bookkeeping that dominates real
// applications' dynamic instruction mix. Each application's ratio of
// bookkeeping to rounding floating point sets its Inexact *rate* —
// Figure 15's per-application spread.
func busywork(b *isa.Builder, n int) {
	for i := 0; i < n; i++ {
		b.Mulq(isa.R6, isa.R8, isa.R8)
	}
}

// busyloop emits a compact loop executing ~n dynamic instructions, for
// dilution factors too large to unroll. cnt and limit are scratch
// integer registers.
func busyloop(b *isa.Builder, cnt, limit int, n int64) {
	b.Movi(cnt, 0)
	b.Movi(limit, n/3)
	top := b.Label("busy")
	b.Bind(top)
	b.Addi(cnt, cnt, 1)
	b.Blt(cnt, limit, top)
}

// expSeries emits exp(x) for |x| <= 1 into xd using a 7-term Horner
// evaluation; xs holds x. Clobbers x14 and x15 and r6.
func expSeries(b *isa.Builder, xd, xs int) {
	// e = 1 + x(1 + x/2(1 + x/3(1 + x/4(1 + x/5(1 + x/6)))))
	fconst(b, 15, 1.0)
	fconst(b, 14, 1.0/6.0)
	b.FP2(isa.OpMULSD, xd, xs, 14) // x/6
	b.FP2(isa.OpADDSD, xd, xd, 15) // 1 + x/6
	for _, inv := range []float64{1.0 / 5, 1.0 / 4, 1.0 / 3, 1.0 / 2, 1.0} {
		fconst(b, 14, inv)
		b.FP2(isa.OpMULSD, xd, xd, xs) // * x
		b.FP2(isa.OpMULSD, xd, xd, 14) // * 1/k
		b.FP2(isa.OpADDSD, xd, xd, 15) // + 1
	}
}
