package workload_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/workload"
)

// gromacsOnlyForms is the paper's Figure 18 list: the 25 instruction
// forms that appear in GROMACS's traces and nowhere else in the study.
var gromacsOnlyForms = []string{
	"vfmaddps", "vsubss", "vmulps", "vroundps", "vmulss", "vdivss",
	"vaddps", "vsqrtss", "vcvtsd2ss", "vfnmaddss", "vfmaddss", "vcvtps2dq",
	"vsubps", "vfmsubss", "vfmsubps", "vaddss", "subps", "vdpps", "addps",
	"vdivps", "vfnmaddps", "vsqrtsd", "cvtsi2sdq", "vucomiss", "vcvttss2si",
}

// capturedForms runs a workload under full individual-mode capture and
// returns the set of instruction forms in its trace.
func capturedForms(t *testing.T, name string) map[string]bool {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	forms := map[string]bool{}
	for _, e := range analysis.RankByForm(res.MustRecords()) {
		forms[e.Key] = true
	}
	return forms
}

// TestGromacsUsesAll25ExclusiveForms reproduces Figure 18's headline:
// GROMACS's AVX/FMA kernels contribute exactly 25 instruction forms no
// other code shows.
func TestGromacsUsesAll25ExclusiveForms(t *testing.T) {
	forms := capturedForms(t, "gromacs")
	for _, f := range gromacsOnlyForms {
		if !forms[f] {
			t.Errorf("gromacs trace missing form %s", f)
		}
	}
	if len(gromacsOnlyForms) != 25 {
		t.Fatalf("exclusive form list has %d entries, want 25", len(gromacsOnlyForms))
	}
}

// TestNoOtherCodeUsesGromacsForms verifies the exclusivity side: the
// other applications' traces contain none of the GROMACS-only forms.
func TestNoOtherCodeUsesGromacsForms(t *testing.T) {
	exclusive := map[string]bool{}
	for _, f := range gromacsOnlyForms {
		exclusive[f] = true
	}
	for _, name := range []string{"miniaero", "lammps", "laghos", "moose", "enzo"} {
		forms := capturedForms(t, name)
		for f := range forms {
			if exclusive[f] {
				t.Errorf("%s uses GROMACS-only form %s", name, f)
			}
		}
	}
}
