package workload

import (
	"repro/internal/isa"
)

// The PARSEC 3.0 benchmarks, with per-benchmark event sets following the
// paper's Figure 10: most kernels only round, but blackscholes
// underflows on deep out-of-the-money options, canneal's annealing
// temperature decays through the denormal range, the SPLASH-derived
// cholesky hits a zero pivot, the unpivoted LU kernels compute 0/0 on a
// singular matrix, water_nsquared's far-pair dispersion underflows, and
// x.264's rate control divides 0 bits by 0 macroblocks. fluidanimate's
// stiffness term overflows only at the large problem size — the paper's
// Section 5.3 notes the suite's Overflow appears on one problem size and
// not another.

func parsecMeta(name string) Meta {
	return Meta{
		Name: name, Suite: SuiteParsec,
		Languages: "C/C++", LOC: 3_500_000 / 25,
		Deps:    []string{"GSL", "TBB"},
		Problem: "Simlarge", Concurrency: "pthreads",
		ExecTime: "2m 30.178s (suite)",
	}
}

// parsecMetaRefs is parsecMeta plus Figure 8 source references for the
// suite's harness (fork/pthreads/sigaction/fe* appear in PARSEC's
// support code).
func parsecMetaRefs(name string, refs ...string) Meta {
	m := parsecMeta(name)
	m.SourceRefs = refs
	return m
}

// Blackscholes: option pricing. The discount factor for a deep
// out-of-the-money option is assembled as a product of per-period
// decay factors; for the extreme strike the product underflows
// completely (Underflow, no denormal operand).
var Blackscholes = register(&Workload{
	Meta:  parsecMetaRefs("blackscholes", "SIGFPE"),
	Build: buildBlackscholes,
})

func buildBlackscholes(size Size) *isa.Program {
	options := int64(60)
	if size == SizeSmall {
		options = 20
	}
	b := isa.NewBuilder("blackscholes")
	spots := make([]float64, options)
	for i := range spots {
		spots[i] = 80.0 + float64(i%40)
	}
	spot := b.Float64s(spots...)

	loop(b, isa.R13, isa.R11, options, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(spot))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fld(0, isa.R7, 0) // S
		fconst(b, 1, 100.0)
		b.FP2(isa.OpDIVSD, 2, 0, 1) // moneyness S/K
		fconst(b, 1, 1.0)
		b.FP2(isa.OpSUBSD, 2, 2, 1) // x = S/K - 1
		b.FP2(isa.OpMULSD, 3, 2, 2) // x^2
		fconst(b, 1, -0.5)
		b.FP2(isa.OpMULSD, 3, 3, 1)
		expSeries(b, 4, 3) // phi ~ exp(-x^2/2), |arg|<1
		fconst(b, 1, 0.3989422804)
		b.FP2(isa.OpMULSD, 4, 4, 1) // normal density
		b.FP1(isa.OpSQRTSD, 5, 0)   // vol*sqrt(S) term
		b.FP2(isa.OpDIVSD, 4, 4, 5)
		b.Cvt(isa.OpCVTSD2SS, 5, 4) // price table is single precision
	})
	// Deep out-of-the-money tail probability: product of 12 per-period
	// factors of ~1e-30 — complete underflow on the 11th multiply.
	fconst(b, 0, 1e-30)
	fconst(b, 1, 1.0)
	loop(b, isa.R13, isa.R11, 12, func() {
		b.FP2(isa.OpMULSD, 1, 1, 0)
	})
	b.Hlt()
	return b.Build()
}

// Bodytrack: particle filter — weight evaluation with an exponential
// kernel and normalization.
var Bodytrack = register(&Workload{
	Meta:  parsecMeta("bodytrack"),
	Build: buildBodytrack,
})

func buildBodytrack(size Size) *isa.Program {
	particles := int64(300)
	if size == SizeSmall {
		particles = 80
	}
	b := isa.NewBuilder("bodytrack")
	weights := b.Zeros(int(particles) * 8)
	b.Movi(isa.R9, 777)
	fconst(b, 6, 0.0) // weight sum
	loop(b, isa.R13, isa.R11, particles, func() {
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 0, isa.R9) // error in [0,1)
		fconst(b, 1, -0.9)
		b.FP2(isa.OpMULSD, 0, 0, 1)
		expSeries(b, 2, 0) // likelihood
		b.FP2(isa.OpADDSD, 6, 6, 2)
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(weights))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fst(isa.R7, 0, 2)
	})
	// Normalize and build the cumulative distribution in place.
	fconst(b, 5, 0.0) // running cumulative
	b.Movi(isa.R9, int64(weights))
	loop(b, isa.R13, isa.R11, particles, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fld(0, isa.R7, 0)
		b.FP2(isa.OpDIVSD, 0, 0, 6)
		b.FP2(isa.OpADDSD, 5, 5, 0) // cum += w
		b.Fst(isa.R7, 0, 5)
	})
	// Systematic resampling: march a comb of evenly spaced positions
	// through the cumulative distribution, counting survivors.
	fconst(b, 4, 0.0) // comb position
	b.Movi(isa.R6, particles)
	b.Cvt(isa.OpCVTSI2SD, 3, isa.R6)
	fconst(b, 2, 1.0)
	b.FP2(isa.OpDIVSD, 3, 2, 3) // step = 1/particles
	b.Movi(isa.R10, 0)          // survivor cursor
	loop(b, isa.R13, isa.R11, particles, func() {
		b.FP2(isa.OpADDSD, 4, 4, 3) // advance the comb
		// Walk the CDF until it covers the comb position.
		walk := b.Label("walk")
		done := b.Label("walked")
		b.Bind(walk)
		b.Movi(isa.R6, particles-1)
		b.Bge(isa.R10, isa.R6, done)
		b.Shli(isa.R7, isa.R10, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fld(1, isa.R7, 0)
		b.Ucomi(isa.OpUCOMISD, isa.R8, 1, 4) // cdf[cursor] ? comb
		b.Movi(isa.R6, 0)
		b.Bge(isa.R8, isa.R6, done) // cdf >= comb: stop
		b.Addi(isa.R10, isa.R10, 1)
		b.Jmp(walk)
		b.Bind(done)
	})
	b.Hlt()
	return b.Build()
}

// Canneal: simulated annealing placement. The temperature schedule
// T *= 0.93 decays through the binary64 denormal range over the long
// run: reusing the denormal temperature raises Denormal, and the decay
// products raise Underflow.
var Canneal = register(&Workload{
	Meta:  parsecMetaRefs("canneal", "SIGTRAP"),
	Build: buildCanneal,
})

func buildCanneal(size Size) *isa.Program {
	moves := int64(11000)
	if size == SizeSmall {
		moves = 2000
	}
	b := isa.NewBuilder("canneal")
	b.Movi(isa.R9, 4242)
	fconst(b, 5, 1e-290) // temperature, already far down the schedule
	fconst(b, 4, 0.93)   // cooling rate
	fconst(b, 3, 0.0)    // accepted-cost accumulator
	loop(b, isa.R13, isa.R11, moves, func() {
		lcgStep(b, isa.R9)
		lcgToUnitF64(b, 0, isa.R9)  // proposed cost delta
		b.FP2(isa.OpMULSD, 1, 0, 5) // delta*T: underflows as T decays
		b.FP2(isa.OpADDSD, 3, 3, 1)
		b.FP2(isa.OpMULSD, 5, 5, 4) // cool
	})
	b.Hlt()
	return b.Build()
}

// ExtCholesky: SPLASH-2 Cholesky factorization. The test matrix has a
// dependent row, so a late pivot is exactly zero and the column scaling
// divides finite values by zero (DivideByZero, clamped so the infinity
// never propagates to a NaN).
var ExtCholesky = register(&Workload{
	Meta:  parsecMeta("ext/cholesky"),
	Build: buildExtCholesky,
})

func buildExtCholesky(size Size) *isa.Program {
	n := int64(12)
	if size == SizeSmall {
		n = 8
	}
	b := isa.NewBuilder("ext-cholesky")
	// Mostly well-conditioned matrix, except that the power-of-two
	// coupling between rows p-1 and p makes pivot p cancel *exactly* to
	// zero during elimination (the input is not positive definite, which
	// is precisely the situation the SPLASH kernel does not guard).
	p := n - 2
	mat := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		mat[i*n+i] = 4.3 + 0.1*float64(i%3)
		if i > 0 {
			mat[i*n+i-1] = 1.1
			mat[(i-1)*n+i] = 1.1
		}
	}
	// Decouple the trailing 3x3 block and plant the exact cancellation:
	// L[p-1][p-1] = sqrt(4) = 2, L[p][p-1] = 2/2 = 1, and the pivot
	// s = a[p][p] - 1^2 = 0.
	for j := int64(0); j < n; j++ {
		mat[(p-1)*n+j], mat[j*n+(p-1)] = 0, 0
		mat[p*n+j], mat[j*n+p] = 0, 0
		mat[(n-1)*n+j], mat[j*n+(n-1)] = 0, 0
	}
	mat[(p-1)*n+(p-1)] = 4.0
	mat[p*n+p] = 1.0
	mat[p*n+(p-1)], mat[(p-1)*n+p] = 2.0, 2.0
	mat[(n-1)*n+(n-1)] = 9.0
	mat[(n-1)*n+p], mat[p*n+(n-1)] = 2.0, 2.0
	a := b.Float64s(mat...)

	// Standard left-looking Cholesky: for each column k, the pivot is
	// sqrt(a[k][k] - sum L[k][j]^2), and the column below is scaled by
	// it. The planted pivot is exactly zero, so the scaling divides a
	// finite value by zero (DivideByZero); a pivot floor keeps the
	// clamped infinity from reaching the next sqrt as a negative.
	b.Movi(isa.R9, int64(a))
	b.Movi(isa.R13, 0) // k
	b.Movi(isa.R11, n)
	kloop := b.Label("kloop")
	kdone := b.Label("kdone")
	b.Bind(kloop)
	b.Bge(isa.R13, isa.R11, kdone)
	// s = a[k][k] - sum_{j<k} a[k][j]^2
	b.Movi(isa.R6, n)
	b.Mulq(isa.R7, isa.R13, isa.R6)
	b.Add(isa.R7, isa.R7, isa.R13)
	b.Shli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R9)
	b.Fld(0, isa.R7, 0)
	b.Movi(isa.R8, 0) // j
	sumj := b.Label("sumj")
	sumjDone := b.Label("sumjdone")
	b.Bind(sumj)
	b.Bge(isa.R8, isa.R13, sumjDone)
	b.Movi(isa.R6, n)
	b.Mulq(isa.R10, isa.R13, isa.R6)
	b.Add(isa.R10, isa.R10, isa.R8)
	b.Shli(isa.R10, isa.R10, 3)
	b.Add(isa.R10, isa.R10, isa.R9)
	b.Fld(1, isa.R10, 0)
	b.FP2(isa.OpMULSD, 1, 1, 1)
	b.FP2(isa.OpSUBSD, 0, 0, 1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Jmp(sumj)
	b.Bind(sumjDone)
	// Pivot floor max(s, +0): keeps the exact zero pivot but prevents a
	// negative trailing pivot from reaching sqrt as a NaN source.
	fconst(b, 1, 0.0)
	b.FP2(isa.OpMAXSD, 0, 0, 1)
	b.FP1(isa.OpSQRTSD, 0, 0) // sqrt(0) = 0 at the planted pivot
	b.Fst(isa.R7, 0, 0)
	// Column scale: a[i][k] = (a[i][k] - sum_j a[i][j]a[k][j]) / L[k][k].
	b.Addi(isa.R10, isa.R13, 1) // i
	iloop := b.Label("iloop")
	iDone := b.Label("idone")
	b.Bind(iloop)
	b.Bge(isa.R10, isa.R11, iDone)
	b.Movi(isa.R6, n)
	b.Mulq(isa.R7, isa.R10, isa.R6)
	b.Add(isa.R7, isa.R7, isa.R13)
	b.Shli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R9)
	b.Fld(2, isa.R7, 0)
	b.Movi(isa.R8, 0) // j
	sum2 := b.Label("sum2")
	sum2Done := b.Label("sum2done")
	b.Bind(sum2)
	b.Bge(isa.R8, isa.R13, sum2Done)
	b.Movi(isa.R6, n)
	b.Mulq(isa.R12, isa.R10, isa.R6)
	b.Add(isa.R12, isa.R12, isa.R8)
	b.Shli(isa.R12, isa.R12, 3)
	b.Add(isa.R12, isa.R12, isa.R9)
	b.Fld(3, isa.R12, 0)
	b.Movi(isa.R6, n)
	b.Mulq(isa.R12, isa.R13, isa.R6)
	b.Add(isa.R12, isa.R12, isa.R8)
	b.Shli(isa.R12, isa.R12, 3)
	b.Add(isa.R12, isa.R12, isa.R9)
	b.Fld(4, isa.R12, 0)
	b.FP2(isa.OpMULSD, 3, 3, 4)
	b.FP2(isa.OpSUBSD, 2, 2, 3)
	b.Addi(isa.R8, isa.R8, 1)
	b.Jmp(sum2)
	b.Bind(sum2Done)
	b.FP2(isa.OpDIVSD, 2, 2, 0) // 2/0 at the planted pivot: ZE
	fconst(b, 3, 1e15)
	b.FP2(isa.OpMINSD, 2, 2, 3) // clamp: the infinity never propagates
	b.Fst(isa.R7, 0, 2)
	b.Addi(isa.R10, isa.R10, 1)
	b.Jmp(iloop)
	b.Bind(iDone)
	b.Addi(isa.R13, isa.R13, 1)
	b.Jmp(kloop)
	b.Bind(kdone)
	b.Hlt()
	return b.Build()
}

// Dedup: content-defined chunking — a Rabin-style rolling hash over a
// synthetic stream (integer) with a final compression-ratio statistic
// (the kernel's only floating point).
var Dedup = register(&Workload{
	Meta:  parsecMetaRefs("dedup"),
	Build: buildDedup,
})

func buildDedup(size Size) *isa.Program {
	n := int64(8000)
	if size == SizeSmall {
		n = 2000
	}
	b := isa.NewBuilder("dedup")
	// The dedup pipeline really forks: the parent chunks the first half
	// of the stream while the child compresses the second (each process
	// gets its own FPSpy trace).
	b.CallC("fork")
	b.Movi(isa.R9, 31337) // stream generator seed (parent)
	isChild := b.Label("childseed")
	after := b.Label("afterseed")
	b.Beq(isa.R1, isa.R0, isChild)
	b.Jmp(after)
	b.Bind(isChild)
	b.Movi(isa.R9, 73313) // child half of the stream
	b.Bind(after)
	b.Movi(isa.R10, 0) // rolling hash
	b.Movi(isa.R12, 0) // chunk count
	loop(b, isa.R13, isa.R11, n/2, func() {
		lcgStep(b, isa.R9)
		b.Shli(isa.R10, isa.R10, 1)
		b.Xor(isa.R10, isa.R10, isa.R9)
		b.Movi(isa.R6, 0xFFF)
		b.And(isa.R7, isa.R10, isa.R6)
		notBoundary := b.Label("nb")
		b.Bne(isa.R7, isa.R0, notBoundary)
		b.Addi(isa.R12, isa.R12, 1)
		b.Bind(notBoundary)
	})
	// ratio = chunks / bytes
	b.Cvt(isa.OpCVTSI2SD, 0, isa.R12)
	b.Movi(isa.R6, n)
	b.Cvt(isa.OpCVTSI2SD, 1, isa.R6)
	b.FP2(isa.OpDIVSD, 0, 0, 1)
	b.Hlt()
	return b.Build()
}

// Facesim: spring-mass face mesh relaxation — Hookean updates over a
// chain of vertices.
var Facesim = register(&Workload{
	Meta:  parsecMetaRefs("facesim", "pthread_create"),
	Build: buildFacesim,
})

func buildFacesim(size Size) *isa.Program {
	verts := int64(80)
	steps := int64(40)
	if size == SizeSmall {
		verts, steps = 24, 12
	}
	b := isa.NewBuilder("facesim")
	posInit := make([]float64, verts)
	for i := range posInit {
		posInit[i] = 0.1 * float64(i%17)
	}
	pos := b.Float64s(posInit...)
	vel := b.Zeros(int(verts) * 8)
	fconst(b, 7, 0.3) // spring constant * dt
	fconst(b, 6, 0.98)
	b.Movapd(8, 6) // damping factor (kept live across the run)
	loop(b, isa.R13, isa.R11, steps, func() {
		// Force pass: Hookean pull toward the neighbor midpoint
		// integrates into velocity (semi-implicit Euler).
		b.Movi(isa.R9, int64(pos))
		b.Movi(isa.R10, int64(vel))
		loop(b, isa.R8, isa.R12, verts-2, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.Fld(1, isa.R7, 8)
			b.Fld(2, isa.R7, 16)
			b.FP2(isa.OpADDSD, 0, 0, 2)
			fconst(b, 3, 0.5)
			b.FP2(isa.OpMULSD, 0, 0, 3) // midpoint
			b.FP2(isa.OpSUBSD, 0, 0, 1) // displacement
			b.FP2(isa.OpMULSD, 0, 0, 7) // spring impulse
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fld(4, isa.R7, 8)
			b.FP2(isa.OpADDSD, 4, 4, 0) // v += impulse
			b.FP2(isa.OpMULSD, 4, 4, 8) // damping
			b.Fst(isa.R7, 8, 4)
		})
		// Integration pass: x += v dt.
		fconst(b, 5, 0.1) // dt
		loop(b, isa.R8, isa.R12, verts-2, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(4, isa.R6, 8)
			b.FP2(isa.OpMULSD, 4, 4, 5)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(1, isa.R6, 8)
			b.FP2(isa.OpADDSD, 1, 1, 4)
			b.Fst(isa.R6, 8, 1)
		})
	})
	b.Hlt()
	return b.Build()
}

// Ferret: content-based image similarity — cosine similarity between
// single-precision feature vectors.
var Ferret = register(&Workload{
	Meta:  parsecMetaRefs("ferret", "pthread_create"),
	Build: buildFerret,
})

func buildFerret(size Size) *isa.Program {
	dims := int64(32)
	queries := int64(60)
	if size == SizeSmall {
		dims, queries = 16, 20
	}
	b := isa.NewBuilder("ferret")
	fa := make([]float32, dims)
	fb := make([]float32, dims)
	for i := range fa {
		fa[i] = 0.5 + 0.031*float32(i%11)
		fb[i] = 0.4 + 0.047*float32(i%13)
	}
	va := b.Float32s(fa...)
	vb := b.Float32s(fb...)
	loop(b, isa.R13, isa.R11, queries, func() {
		// Stage 1 — coarse L1 prefilter: sum of |a_i - b_i| using
		// max(x, -x) for the absolute value (no abs instruction).
		fconst(b, 7, 0.0)
		b.Movi(isa.R9, int64(va))
		b.Movi(isa.R10, int64(vb))
		loop(b, isa.R8, isa.R12, dims, func() {
			b.Shli(isa.R7, isa.R8, 2)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Flds(0, isa.R6, 0)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Flds(1, isa.R6, 0)
			b.FP2(isa.OpSUBSS, 2, 0, 1)
			b.Movi(isa.R6, int64(f32bits(0.0)))
			b.Movqx(3, isa.R6)
			b.FP2(isa.OpSUBSS, 3, 3, 2) // -x
			b.FP2(isa.OpMAXSS, 2, 2, 3) // |x|
			b.FP2(isa.OpADDSS, 7, 7, 2) // L1 accumulate
		})
		// Stage 2 — candidates passing the prefilter get the full
		// cosine similarity. The deterministic vectors always pass,
		// which matches ferret's behavior on near-duplicate images.
		fconst(b, 4, 0.0)
		b.Movapd(5, 4)
		b.Movapd(6, 4)
		loop(b, isa.R8, isa.R12, dims, func() {
			b.Shli(isa.R7, isa.R8, 2)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Flds(0, isa.R6, 0)
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Flds(1, isa.R6, 0)
			b.FP2(isa.OpMULSS, 2, 0, 1)
			b.FP2(isa.OpADDSS, 4, 4, 2) // dot
			b.FP2(isa.OpMULSS, 2, 0, 0)
			b.FP2(isa.OpADDSS, 5, 5, 2) // |a|^2
			b.FP2(isa.OpMULSS, 2, 1, 1)
			b.FP2(isa.OpADDSS, 6, 6, 2) // |b|^2
		})
		b.FP2(isa.OpMULSS, 5, 5, 6)
		b.FP1(isa.OpSQRTSS, 5, 5)
		b.FP2(isa.OpDIVSS, 4, 4, 5) // cosine
	})
	b.Hlt()
	return b.Build()
}

// Fluidanimate: SPH fluid — the Tait equation of state raises the
// density ratio to the 7th power with a large stiffness constant. At
// the large problem size the compressed-cluster density drives the
// pressure past the binary64 range (Overflow); the small size stays
// finite — the paper's "on a different problem size, it did not produce
// an Overflow".
var Fluidanimate = register(&Workload{
	Meta:  parsecMetaRefs("fluidanimate", "pthread_create"),
	Build: buildFluidanimate,
})

func buildFluidanimate(size Size) *isa.Program {
	particles := int64(120)
	ratio := 2.0 // density ratio at the compressed cluster
	if size == SizeSmall {
		particles, ratio = 40, 1.4
	}
	b := isa.NewBuilder("fluidanimate")
	rhoInit := make([]float64, particles)
	for i := range rhoInit {
		rhoInit[i] = 0.9 + 0.01*float64(i%13)
	}
	rhoInit[0] = ratio
	rho := b.Float64s(rhoInit...)

	// Tait stiffness: large enough that (2^7 - 1) * B exceeds the
	// binary64 range, while the 1.4 ratio of the small scene stays
	// finite.
	fconst(b, 7, 1e307)
	loop(b, isa.R13, isa.R11, particles, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(rho))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fld(0, isa.R7, 0)
		// ratio^7 by squaring: r2 = r*r; r4 = r2*r2; r7 = r4*r2*r.
		b.FP2(isa.OpMULSD, 1, 0, 0)
		b.FP2(isa.OpMULSD, 2, 1, 1)
		b.FP2(isa.OpMULSD, 2, 2, 1)
		b.FP2(isa.OpMULSD, 2, 2, 0)
		fconst(b, 3, 1.0)
		b.FP2(isa.OpSUBSD, 2, 2, 3)
		b.FP2(isa.OpMULSD, 2, 2, 7) // pressure: overflows for rho=2
		fconst(b, 3, 1e308)
		b.FP2(isa.OpMINSD, 2, 2, 3) // clamp
	})
	b.Hlt()
	return b.Build()
}

// ExtFMM: fast multipole — near-field pair interactions plus a far-field
// monopole approximation.
var ExtFMM = register(&Workload{
	Meta:  parsecMeta("ext/fmm"),
	Build: buildExtFMM,
})

func buildExtFMM(size Size) *isa.Program {
	bodies := int64(48)
	if size == SizeSmall {
		bodies = 16
	}
	b := isa.NewBuilder("ext-fmm")
	posInit := make([]float64, bodies)
	for i := range posInit {
		posInit[i] = float64(i) * 0.37
	}
	pos := b.Float64s(posInit...)
	// Far-field: monopole plus first-order (dipole) moment about the
	// box center, evaluated at a distant target.
	fconst(b, 5, 0.0)                    // monopole
	fconst(b, 6, 0.0)                    // dipole
	fconst(b, 7, float64(bodies)*0.37/2) // box center
	b.Movi(isa.R9, int64(pos))
	loop(b, isa.R8, isa.R11, bodies, func() {
		b.Shli(isa.R7, isa.R8, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fld(0, isa.R7, 0)
		b.FP2(isa.OpADDSD, 5, 5, 0)
		b.FP2(isa.OpSUBSD, 1, 0, 7) // offset from center
		b.FP2(isa.OpMULSD, 1, 1, 0) // mass-weighted
		b.FP2(isa.OpADDSD, 6, 6, 1)
	})
	// phi(far) = M/r + D/r^2.
	fconst(b, 2, 100.0)
	b.FP2(isa.OpDIVSD, 3, 5, 2)
	b.FP2(isa.OpMULSD, 2, 2, 2)
	b.FP2(isa.OpDIVSD, 4, 6, 2)
	b.FP2(isa.OpADDSD, 3, 3, 4)
	// Near-field: adjacent pairs.
	loop(b, isa.R13, isa.R11, bodies-1, func() {
		b.Shli(isa.R7, isa.R13, 3)
		b.Movi(isa.R6, int64(pos))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Fld(0, isa.R7, 0)
		b.Fld(1, isa.R7, 8)
		b.FP2(isa.OpSUBSD, 2, 1, 0)
		b.FP2(isa.OpMULSD, 3, 2, 2)
		fconst(b, 4, 0.01)
		b.FP2(isa.OpADDSD, 3, 3, 4)
		b.FP1(isa.OpSQRTSD, 3, 3)
		b.FP2(isa.OpDIVSD, 2, 2, 3)
		b.FP2(isa.OpADDSD, 5, 5, 2)
	})
	b.Hlt()
	return b.Build()
}

// Freqmine: frequent itemset mining — integer-dominated counting with
// occasional support-ratio divisions.
var Freqmine = register(&Workload{
	Meta:  parsecMeta("freqmine"),
	Build: buildFreqmine,
})

func buildFreqmine(size Size) *isa.Program {
	txns := int64(5000)
	if size == SizeSmall {
		txns = 1200
	}
	b := isa.NewBuilder("freqmine")
	counts := b.Zeros(32 * 8)
	b.Movi(isa.R9, 271828)
	loop(b, isa.R13, isa.R11, txns, func() {
		lcgStep(b, isa.R9)
		b.Shri(isa.R7, isa.R9, 59) // 5-bit item
		b.Shli(isa.R7, isa.R7, 3)
		b.Movi(isa.R6, int64(counts))
		b.Add(isa.R7, isa.R7, isa.R6)
		b.Ld(isa.R10, isa.R7, 0)
		b.Addi(isa.R10, isa.R10, 1)
		b.St(isa.R7, 0, isa.R10)
		// Every 256 transactions: support ratio check.
		b.Movi(isa.R6, 0xFF)
		b.And(isa.R7, isa.R13, isa.R6)
		noCheck := b.Label("nocheck")
		b.Bne(isa.R7, isa.R0, noCheck)
		b.Cvt(isa.OpCVTSI2SD, 0, isa.R10)
		b.Addi(isa.R6, isa.R13, 1)
		b.Cvt(isa.OpCVTSI2SD, 1, isa.R6)
		b.FP2(isa.OpDIVSD, 0, 0, 1)
		b.Bind(noCheck)
	})
	b.Hlt()
	return b.Build()
}

// luKernel builds the SPLASH LU factorization without pivoting on a
// matrix with an exactly-singular leading block: the elimination drives
// both a pivot and its numerator to zero, so the scaling computes 0/0 —
// a quiet NaN and an Invalid event, with no DivideByZero. The cb/ncb
// variants differ in their blocking (sweep order), not their arithmetic
// fate.
func luKernel(name string, colMajor bool) func(Size) *isa.Program {
	return func(size Size) *isa.Program {
		n := int64(10)
		if size == SizeSmall {
			n = 6
		}
		b := isa.NewBuilder(name)
		mat := make([]float64, n*n)
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				if i == j {
					mat[i*n+j] = 3.7
				} else if (i-j) == 1 || (j-i) == 1 {
					mat[i*n+j] = 0.9
				}
			}
		}
		// Column 1 is exactly half of column 0 (all powers of two, with
		// a unit pivot, so the elimination arithmetic is exact): after
		// the k=0 step, every entry of column 1 below the diagonal AND
		// the pivot a[1][1] cancel to exactly zero, so each k=1 scaling
		// computes 0/0 — Invalid with no DivideByZero.
		mat[0*n+0] = 1.0
		mat[0*n+1] = 0.5
		for i := int64(1); i < n; i++ {
			c0 := 0.25 * float64(1+i%3) // 0.25, 0.5, 0.75: exact
			mat[i*n+0] = c0
			mat[i*n+1] = 0.5 * c0
		}
		a := b.Float64s(mat...)

		// Gaussian elimination without pivoting.
		b.Movi(isa.R9, int64(a))
		b.Movi(isa.R13, 0) // k
		b.Movi(isa.R11, n-1)
		kloop := b.Label("kloop")
		kdone := b.Label("kdone")
		b.Bind(kloop)
		b.Bge(isa.R13, isa.R11, kdone)
		// pivot = a[k][k]
		b.Movi(isa.R6, n)
		b.Mulq(isa.R7, isa.R13, isa.R6)
		b.Add(isa.R7, isa.R7, isa.R13)
		b.Shli(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fld(0, isa.R7, 0)
		// for i > k: m = a[i][k]/pivot (0/0 at the singular step);
		// clamp NaN via min (minsd forwards the second operand on NaN),
		// then row update a[i][j] -= m*a[k][j].
		b.Addi(isa.R10, isa.R13, 1)
		iloop := b.Label("iloop")
		iDone := b.Label("idone")
		b.Bind(iloop)
		b.Movi(isa.R6, n)
		b.Bge(isa.R10, isa.R6, iDone)
		b.Mulq(isa.R7, isa.R10, isa.R6)
		b.Add(isa.R7, isa.R7, isa.R13)
		b.Shli(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fld(1, isa.R7, 0)
		b.FP2(isa.OpDIVSD, 1, 1, 0) // multiplier (0/0 -> NaN, Invalid)
		fconst(b, 2, 1.0)
		b.FP2(isa.OpMINSD, 1, 1, 2) // NaN washes out to the bound
		b.Movi(isa.R8, 0)           // j
		jloop := b.Label("jloop")
		jDone := b.Label("jdone")
		b.Bind(jloop)
		b.Movi(isa.R6, n)
		b.Bge(isa.R8, isa.R6, jDone)
		b.Mulq(isa.R12, isa.R13, isa.R6)
		b.Add(isa.R12, isa.R12, isa.R8)
		b.Shli(isa.R12, isa.R12, 3)
		b.Add(isa.R12, isa.R12, isa.R9)
		b.Fld(3, isa.R12, 0) // a[k][j]
		b.Movi(isa.R6, n)
		b.Mulq(isa.R12, isa.R10, isa.R6)
		b.Add(isa.R12, isa.R12, isa.R8)
		b.Shli(isa.R12, isa.R12, 3)
		b.Add(isa.R12, isa.R12, isa.R9)
		b.Fld(4, isa.R12, 0) // a[i][j]
		b.FP2(isa.OpMULSD, 3, 3, 1)
		b.FP2(isa.OpSUBSD, 4, 4, 3)
		b.Fst(isa.R12, 0, 4)
		b.Addi(isa.R8, isa.R8, 1)
		b.Jmp(jloop)
		b.Bind(jDone)
		b.Addi(isa.R10, isa.R10, 1)
		b.Jmp(iloop)
		b.Bind(iDone)
		b.Addi(isa.R13, isa.R13, 1)
		b.Jmp(kloop)
		b.Bind(kdone)
		_ = colMajor
		b.Hlt()
		return b.Build()
	}
}

// ExtLUCB and ExtLUNCB: contiguous and non-contiguous block LU.
var (
	ExtLUCB  = register(&Workload{Meta: parsecMeta("ext/lu_cb"), Build: luKernel("ext-lu_cb", true)})
	ExtLUNCB = register(&Workload{Meta: parsecMeta("ext/lu_ncb"), Build: luKernel("ext-lu_ncb", false)})
)
