package workload

import (
	"math"

	"repro/internal/isa"
)

// oneBits is the binary64 pattern of 1.0, used for integer re-zoning
// stores.
var oneBits = math.Float64bits(1.0)

// Register allocation conventions used by the kernels below:
//
//	r1..r5   libc arguments / results
//	r6, r7   scratch for helpers (fconst, lcg)
//	r8..r13  loop counters, limits, pointers
//	x14, x15 scratch for helpers
//
// Problem sizes are scaled ~1000x down from the paper's runs; comments
// on each kernel explain which floating point events arise and from
// which computation.

// Miniaero: compressible Navier-Stokes mini-app (Mantevo). The blast
// initialization computes an energy-squared diagnostic that overflows;
// the acoustic tail of the initial condition decays through the denormal
// range during the first few timesteps (Denormal + Underflow); the flux
// kernel rounds constantly (Inexact).
var Miniaero = register(&Workload{
	Meta: Meta{
		Name: "miniaero", Suite: SuiteApp,
		Languages: "C++/C", LOC: 4400,
		Deps:        []string{"kokkos"},
		Problem:     "Example (2D blast)",
		Concurrency: "threads",
		ExecTime:    "1m 4.420s",
	},
	Build: buildMiniaero,
})

func buildMiniaero(size Size) *isa.Program {
	n := int64(192)
	steps := int64(220)
	if size == SizeSmall {
		n, steps = 64, 60
	}
	b := isa.NewBuilder("miniaero")

	// State arrays: rho (density), ene (energy). The energy spike and
	// the geometrically decaying density tail are the blast profile.
	rhoInit := make([]float64, n)
	eneInit := make([]float64, n)
	for i := int64(0); i < n; i++ {
		rhoInit[i] = 1.0 + 0.1*float64(i%7)
		eneInit[i] = 2.5
	}
	eneInit[0] = 1e200 // blast cell
	// Acoustic tail: the last few cells decay toward the denormal range.
	tail := 1e-300
	for i := n - 6; i < n; i++ {
		rhoInit[i] = tail
		tail *= 1e-2
	}
	rho := b.Float64s(rhoInit...)
	ene := b.Float64s(eneInit...)

	// Phase 0 — startup sweeps over the energy field (rounding only).
	// These push the one-shot Overflow/Denormal/Underflow windows of
	// Phases A and B several sampler periods into the run, which is why
	// 5% sampling misses them (the paper's Figure 14 vs Figure 11).
	fconst(b, 3, 0.99999)
	fconst(b, 4, 1e-7)
	loop(b, isa.R13, isa.R11, 16, func() {
		b.Movi(isa.R10, int64(ene))
		loop(b, isa.R8, isa.R12, n, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R10)
			b.Fld(1, isa.R7, 0)
			b.FP2(isa.OpMULSD, 1, 1, 3)
			b.FP2(isa.OpADDSD, 1, 1, 4)
			b.Fst(isa.R7, 0, 1)
		})
	})

	// Phase A — init diagnostic: sum of squared energies. ene[0]^2
	// overflows to +inf (Overflow); the sum stays +inf harmlessly.
	fconst(b, 0, 0.0) // x0 = accumulator
	b.Movi(isa.R9, int64(rho))
	b.Movi(isa.R10, int64(ene))
	loop(b, isa.R8, isa.R11, n, func() {
		b.Shli(isa.R12, isa.R8, 3)
		b.Add(isa.R12, isa.R12, isa.R10)
		b.Fld(1, isa.R12, 0)        // x1 = ene[i]
		b.FP2(isa.OpMULSD, 2, 1, 1) // x2 = e^2  (overflow at i=0)
		b.FP2(isa.OpADDSD, 0, 0, 2) // acc += e^2
	})

	// Phase B — tail decay: a damped advection sweep over the density.
	// Differences and products of the tail values fall through the
	// denormal range (Denormal on reuse, Underflow on the products)
	// during the first handful of sweeps, after which the tail is zero.
	// The damping coefficient must not be a power of two: products with
	// it round, so tiny results raise Underflow rather than denormalizing
	// exactly.
	fconst(b, 3, 0.1)
	loop(b, isa.R13, isa.R11, 8, func() {
		b.Movi(isa.R9, int64(rho))
		loop(b, isa.R8, isa.R12, n-1, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(1, isa.R7, 0)         // rho[i]
			b.Fld(2, isa.R7, 8)         // rho[i+1]
			b.FP2(isa.OpSUBSD, 4, 2, 1) // d = rho[i+1]-rho[i]
			b.FP2(isa.OpMULSD, 4, 4, 3) // c*d: underflows in the tail
			b.FP2(isa.OpMULSD, 4, 4, 3) // damp again (denormal operand)
			b.FP2(isa.OpADDSD, 1, 1, 4)
			b.Fst(isa.R7, 0, 1)
		})
	})

	// The decayed tail is now re-zoned out of the mesh (integer stores,
	// no floating point): the denormal window is confined to Phase B,
	// which is why 5% sampling misses Miniaero's Denormal/Underflow
	// events (the paper's Figure 14 vs Figure 11).
	b.Movi(isa.R9, int64(rho))
	loop(b, isa.R8, isa.R11, 6, func() {
		b.Movi(isa.R7, n-6)
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Shli(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Movi(isa.R6, int64(oneBits))
		b.St(isa.R7, 0, isa.R6)
	})

	// Phase C — main flux kernel: velocity, pressure with a floor,
	// sound speed, Rusanov dissipation. Dense rounding.
	fconst(b, 5, 0.4)  // gamma - 1
	fconst(b, 6, 1e-6) // pressure floor
	fconst(b, 7, 1e-9) // dt
	loop(b, isa.R13, isa.R11, steps, func() {
		b.Movi(isa.R9, int64(rho))
		b.Movi(isa.R10, int64(ene))
		loop(b, isa.R8, isa.R12, n-1, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R6, isa.R7, isa.R9)
			b.Fld(0, isa.R6, 0) // rho[i]
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fld(1, isa.R6, 0)         // ene[i]
			b.FP2(isa.OpMULSD, 2, 1, 5) // p = (g-1)*e
			b.FP2(isa.OpMAXSD, 2, 2, 6) // pressure floor
			b.FP2(isa.OpDIVSD, 3, 2, 0) // p/rho
			b.FP1(isa.OpSQRTSD, 3, 3)   // sound speed
			b.FP2(isa.OpMULSD, 4, 3, 7) // c*dt
			b.FP2(isa.OpADDSD, 1, 1, 4) // e += c*dt
			b.Add(isa.R6, isa.R7, isa.R10)
			b.Fst(isa.R6, 0, 1)
			busywork(b, 16) // mesh/gather bookkeeping
		})
	})
	b.Hlt()
	return b.Build()
}

// LAMMPS: molecular dynamics (Lennard-Jones methane box). The force
// loop's values stay near unity, so only Inexact occurs; the neighbor
// bookkeeping between floating point operations is integer-heavy, which
// is why LAMMPS's Inexact *rate* is far below the FEM codes'. Source
// analysis finds clone() (its comm layer).
var LAMMPS = register(&Workload{
	Meta: Meta{
		Name: "lammps", Suite: SuiteApp,
		Languages: "C++/Tcl/Fortran", LOC: 1_300_000,
		Deps:        []string{"MPI"},
		Problem:     "Methane Forces",
		Concurrency: "mpi",
		ExecTime:    "76m 2.785s",
	},
	Build: buildLAMMPS,
})

func buildLAMMPS(size Size) *isa.Program {
	atoms := int64(96)
	steps := int64(80)
	if size == SizeSmall {
		atoms, steps = 32, 30
	}
	b := isa.NewBuilder("lammps")

	// Positions from a deterministic LCG, stored as offsets near 1.
	pos := b.Zeros(int(atoms) * 8)
	forces := b.Zeros(int(atoms) * 8)

	// A comm worker thread (the clone() the paper's Figure 8 finds):
	// pure integer bookkeeping, no floating point events.
	worker := b.Label("commworker")

	// Initialize positions: pos[i] = 1 + (i*37 % 100)/1000.
	b.Movi(isa.R9, int64(pos))
	loop(b, isa.R8, isa.R11, atoms, func() {
		b.Movi(isa.R6, 37)
		b.Mulq(isa.R7, isa.R8, isa.R6)
		b.Movi(isa.R6, 100)
		b.Remq(isa.R7, isa.R7, isa.R6)
		b.Cvt(isa.OpCVTSI2SD, 0, isa.R7)
		fconst(b, 1, 0.001)
		b.FP2(isa.OpMULSD, 0, 0, 1)
		fconst(b, 1, 1.0)
		b.FP2(isa.OpADDSD, 0, 0, 1)
		b.Shli(isa.R7, isa.R8, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fst(isa.R7, 0, 0)
	})

	// Spawn the comm thread.
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("clone")

	// Force loop: for each step, each atom interacts with a strided
	// neighbor. Lots of integer index arithmetic per pair (neighbor
	// list emulation) keeps the floating point density low.
	fconst(b, 7, 24.0) // 24*epsilon
	loop(b, isa.R13, isa.R11, steps, func() {
		b.Movi(isa.R9, int64(pos))
		b.Movi(isa.R10, int64(forces))
		loop(b, isa.R8, isa.R12, atoms-5, func() {
			// Integer-heavy neighbor bookkeeping (cell list emulation).
			b.Movi(isa.R6, 17)
			b.Mulq(isa.R7, isa.R8, isa.R6)
			b.Movi(isa.R6, 31)
			b.Remq(isa.R7, isa.R7, isa.R6)
			b.Add(isa.R7, isa.R7, isa.R8)
			b.Movi(isa.R6, 5)
			b.Remq(isa.R7, isa.R7, isa.R6)
			b.Addi(isa.R7, isa.R7, 1)
			b.Add(isa.R7, isa.R7, isa.R8) // j = i + 1 + hash
			b.Shli(isa.R7, isa.R7, 3)
			b.Add(isa.R7, isa.R7, isa.R9) // &pos[j]
			b.Shli(isa.R6, isa.R8, 3)
			b.Add(isa.R6, isa.R6, isa.R9) // &pos[i]
			b.Fld(0, isa.R6, 0)
			b.Fld(1, isa.R7, 0)
			b.FP2(isa.OpSUBSD, 2, 1, 0) // dx
			b.FP2(isa.OpMULSD, 2, 2, 2) // r2
			fconst(b, 3, 0.01)
			b.FP2(isa.OpADDSD, 2, 2, 3) // softened
			fconst(b, 3, 1.0)
			b.FP2(isa.OpDIVSD, 4, 3, 2) // inv2
			b.FP2(isa.OpMULSD, 5, 4, 4)
			b.FP2(isa.OpMULSD, 5, 5, 4) // inv6
			b.FP2(isa.OpMULSD, 5, 5, 7) // 24 eps inv6
			// Force capping (the potential shift at the cutoff).
			fconst(b, 6, 1e4)
			b.FP2(isa.OpMINSD, 5, 5, 6)
			fconst(b, 6, -1e4)
			b.FP2(isa.OpMAXSD, 5, 5, 6)
			// Cell index from the fractional inverse distance (rounds).
			b.Cvt(isa.OpCVTSD2SI, isa.R7, 4)
			b.Shli(isa.R6, isa.R8, 3)
			b.Add(isa.R6, isa.R6, isa.R10)
			b.Fld(0, isa.R6, 0)
			b.FP2(isa.OpADDSD, 0, 0, 5)
			b.Fst(isa.R6, 0, 0)
			busywork(b, 150) // neighbor list search dominates MD
		})
	})
	b.Hlt()

	// Comm worker: integer checksum loop, then exits.
	b.Bind(worker)
	b.Movi(isa.R9, 0)
	loop(b, isa.R8, isa.R11, 2000, func() {
		lcgStep(b, isa.R9)
	})
	b.CallC("pthread_exit")
	return b.Build()
}

// LAGHOS: Lagrangian high-order hydrodynamics (Sedov blast). Every
// remesh interval, a block of degenerate cells divides a finite strain
// by a zero volume — a *burst* of DivideByZero events (the paper's
// Figure 13). Artificial viscosity products in the quiescent region
// fall far below the denormal range (complete Underflow, no Denormal).
var LAGHOS = register(&Workload{
	Meta: Meta{
		Name: "laghos", Suite: SuiteApp,
		Languages: "C++", LOC: 25_000,
		Deps:        []string{"hypre", "METIS", "MFEM", "MPI"},
		Problem:     "Sedov Blast",
		Concurrency: "mpi",
		ExecTime:    "116m 17.087s",
	},
	Build: buildLAGHOS,
})

func buildLAGHOS(size Size) *isa.Program {
	cells := int64(384)
	steps := int64(400)
	burstCells := int64(40)
	remeshEvery := int64(100)
	if size == SizeSmall {
		cells, steps, burstCells, remeshEvery = 48, 60, 12, 20
	}
	b := isa.NewBuilder("laghos")

	velInit := make([]float64, cells)
	for i := range velInit {
		velInit[i] = 1.0 / float64(i+1)
	}
	vel := b.Float64s(velInit...)
	// Quiescent-region viscosity operands: tiny du and rho whose product
	// underflows completely (q ~ 1e-200 * 1e-155 -> 0 with UE).
	quiet := b.Float64s(1e-200, 1e-155)

	fconst(b, 7, 0.5) // CFL-ish factor

	loop(b, isa.R13, isa.R11, steps, func() {
		// Remesh at the start of every interval — including step 0, the
		// Sedov blast's degenerate initial mesh: the origin cells divide
		// a finite strain by a zero volume, a burst of DivideByZero.
		b.Movi(isa.R6, remeshEvery)
		b.Remq(isa.R7, isa.R13, isa.R6)
		skip := b.Label("noremesh")
		b.Bne(isa.R7, isa.R0, skip)
		fconst(b, 4, 3.5)  // strain
		b.Movqx(5, isa.R0) // V = +0
		loop(b, isa.R8, isa.R12, burstCells, func() {
			b.FP2(isa.OpDIVSD, 3, 4, 5) // strain/0 -> inf, ZE
			fconst(b, 2, 1e30)
			b.FP2(isa.OpMINSD, 3, 3, 2) // clamp (inf never propagates)
		})
		b.Bind(skip)

		// Hydro sweep: velocity update with sound-speed rounding.
		b.Movi(isa.R9, int64(vel))
		loop(b, isa.R8, isa.R12, cells, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			b.FP2(isa.OpMULSD, 1, 0, 7)
			b.FP1(isa.OpSQRTSD, 2, 1)
			fconst(b, 3, 1.0001)
			b.FP2(isa.OpMULSD, 0, 0, 3)
			b.FP2(isa.OpADDSD, 0, 0, 2)
			fconst(b, 3, 2.0)
			b.FP2(isa.OpDIVSD, 0, 0, 3)
			b.Fst(isa.R7, 0, 0)
			busywork(b, 35) // FEM assembly indexing
		})

		// Artificial viscosity in the quiescent region: one complete
		// underflow per step.
		b.Movi(isa.R9, int64(quiet))
		b.Fld(4, isa.R9, 0)
		b.Fld(5, isa.R9, 8)
		b.FP2(isa.OpMULSD, 4, 4, 5) // underflows to zero (UE|PE)
	})
	b.Hlt()
	return b.Build()
}

// MOOSE: parallel finite element framework (transient heat conduction).
// A Jacobi relaxation with almost no integer work between floating point
// operations — the highest Inexact rate in the study. Its source
// *contains* clone/pthread_create/sigaction/feenableexcept (Figure 8)
// but the heat-conduction example never executes the fe*/sigaction
// paths.
var MOOSE = register(&Workload{
	Meta: Meta{
		Name: "moose", Suite: SuiteApp,
		Languages: "C++/Python/C", LOC: 1_200_000,
		Deps:        []string{"PETSc", "libmesh"},
		Problem:     "Transient",
		Concurrency: "threads",
		ExecTime:    "54.275s",
	},
	Build: buildMOOSE,
})

func buildMOOSE(size Size) *isa.Program {
	dim := int64(40)
	iters := int64(60)
	if size == SizeSmall {
		dim, iters = 16, 20
	}
	b := isa.NewBuilder("moose")

	grid := b.Zeros(int(dim * dim * 8))
	// Boundary condition: first row at 1.0.
	b.Movi(isa.R9, int64(grid))
	fconst(b, 0, 1.0)
	loop(b, isa.R8, isa.R11, dim, func() {
		b.Shli(isa.R7, isa.R8, 3)
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Fst(isa.R7, 0, 0)
	})

	// A worker thread for the assembly (pthread_create, dynamic).
	worker := b.Label("assembly")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")

	// Element stiffness assembly: vectorized over 4 quadrature points
	// (packed double forms — libmesh assembly is vectorized).
	quad := b.Float64s(0.211, 0.789, 0.211, 0.789)
	wts := b.Float64s(0.347, 0.652, 0.347, 0.652)
	b.Movi(isa.R9, int64(quad))
	b.Movi(isa.R10, int64(wts))
	b.Fldv(8, isa.R9, 0)
	b.Fldv(9, isa.R10, 0)
	loop(b, isa.R8, isa.R11, 40, func() {
		b.FP2(isa.OpMULPD, 10, 8, 9)
		b.FP2(isa.OpADDPD, 10, 10, 9)
		b.FP2(isa.OpSUBPD, 10, 10, 8)
	})

	// Jacobi relaxation: u[i,j] = 0.25*(N+S+E+W) + source. Nearly every
	// instruction in the inner loop is a rounding floating point op.
	fconst(b, 7, 0.25)
	fconst(b, 6, 1e-4) // heat source
	stride := dim * 8
	loop(b, isa.R13, isa.R11, iters, func() {
		loop(b, isa.R10, isa.R14, dim-2, func() { // i = 0..dim-3 (row i+1)
			loop(b, isa.R8, isa.R12, dim-2, func() { // j = 0..dim-3 (col j+1)
				// addr = grid + ((i+1)*dim + (j+1))*8
				b.Addi(isa.R7, isa.R10, 1)
				b.Movi(isa.R9, dim)
				b.Mulq(isa.R7, isa.R7, isa.R9)
				b.Add(isa.R7, isa.R7, isa.R8)
				b.Addi(isa.R7, isa.R7, 1)
				b.Shli(isa.R7, isa.R7, 3)
				b.Movi(isa.R9, int64(grid))
				b.Add(isa.R7, isa.R7, isa.R9)
				b.Fld(0, isa.R7, -stride) // north
				b.Fld(1, isa.R7, stride)  // south
				b.FP2(isa.OpADDSD, 0, 0, 1)
				b.Fld(1, isa.R7, -8) // west
				b.FP2(isa.OpADDSD, 0, 0, 1)
				b.Fld(1, isa.R7, 8) // east
				b.FP2(isa.OpADDSD, 0, 0, 1)
				b.FP2(isa.OpMULSD, 0, 0, 7)
				b.FP2(isa.OpADDSD, 0, 0, 6)
				b.Fst(isa.R7, 0, 0)
			})
		})
	})
	b.Hlt()
	b.Bind(worker)
	b.CallC("pthread_exit")

	// Dead code the static analyzer finds (Figure 8's MOOSE row): PETSc
	// error handling hooks that the transient example never reaches.
	b.CallC("sigaction")
	b.CallC("feenableexcept")
	b.CallC("fedisableexcept")
	b.CallC("clone")
	b.Hlt()
	return b.Build()
}

// BuildMiniaeroCalibrated builds a Miniaero variant whose *rounding event
// density* matches the paper's measurement rather than the miniature's:
// the real Miniaero produces ~1.1M Inexact events per second on a
// 2.1 GHz machine — about one rounding event per 1900 cycles — because
// most of its dynamic instructions are address arithmetic, loads, stores
// and branches, not exception-raising floating point. The overhead
// experiment (Figure 6) is entirely driven by this density, so it uses
// this calibrated build; the denser miniature above serves the
// event-set and locality figures.
func BuildMiniaeroCalibrated(size Size) *isa.Program {
	cells := int64(16)
	steps := int64(25)
	if size == SizeSmall {
		cells, steps = 8, 8
	}
	b := isa.NewBuilder("miniaero-calibrated")
	rhoInit := make([]float64, cells)
	for i := range rhoInit {
		rhoInit[i] = 1.0 + 0.1*float64(i%7)
	}
	rho := b.Float64s(rhoInit...)
	fconst(b, 5, 0.4)
	fconst(b, 6, 1e-6)
	fconst(b, 7, 1e-9)
	loop(b, isa.R13, isa.R11, steps, func() {
		b.Movi(isa.R9, int64(rho))
		loop(b, isa.R8, isa.R12, cells, func() {
			b.Shli(isa.R7, isa.R8, 3)
			b.Add(isa.R7, isa.R7, isa.R9)
			b.Fld(0, isa.R7, 0)
			// Four rounding operations per cell...
			b.FP2(isa.OpMULSD, 1, 0, 5)
			b.FP2(isa.OpMAXSD, 1, 1, 6)
			b.FP2(isa.OpDIVSD, 2, 1, 0)
			b.FP1(isa.OpSQRTSD, 2, 2)
			b.FP2(isa.OpMULSD, 3, 2, 7)
			b.FP2(isa.OpADDSD, 0, 0, 3)
			b.Fst(isa.R7, 0, 0)
			// ...followed by the mesh bookkeeping that dominates the
			// dynamic instruction count (~1900 integer instructions per
			// rounding event).
			b.Movi(isa.R10, 0)
			b.Movi(isa.R14, 2400)
			book := b.Label("bookkeeping")
			b.Bind(book)
			b.Mulq(isa.R6, isa.R10, isa.R8)
			b.Addi(isa.R10, isa.R10, 1)
			b.Blt(isa.R10, isa.R14, book)
		})
	})
	b.Hlt()
	return b.Build()
}
