package workload_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/workload"
)

// parsecEventSets is the paper's Figure 10 matrix: per-benchmark
// aggregate event sets at the simlarge-equivalent size... except
// fluidanimate, whose Overflow appears only at SizeLarge (the paper's
// Section 5.3 problem-size note); Figure 10's row reflects the size
// without it.
var parsecEventSets = map[string]fpspy.Flags{
	"ext/barnes":         fpspy.FlagInexact,
	"blackscholes":       fpspy.FlagUnderflow | fpspy.FlagInexact,
	"bodytrack":          fpspy.FlagInexact,
	"canneal":            fpspy.FlagDenormal | fpspy.FlagUnderflow | fpspy.FlagInexact,
	"ext/cholesky":       fpspy.FlagDivideByZero | fpspy.FlagInexact,
	"dedup":              fpspy.FlagInexact,
	"facesim":            fpspy.FlagInexact,
	"ferret":             fpspy.FlagInexact,
	"fluidanimate":       fpspy.FlagOverflow | fpspy.FlagInexact, // SizeLarge
	"freqmine":           fpspy.FlagInexact,
	"ext/lu_cb":          fpspy.FlagInvalid | fpspy.FlagInexact,
	"ext/lu_ncb":         fpspy.FlagInvalid | fpspy.FlagInexact,
	"ext/ocean_cp":       fpspy.FlagInexact,
	"ext/ocean_ncp":      fpspy.FlagInexact,
	"ext/radiosity":      fpspy.FlagInexact,
	"ext/radix":          fpspy.FlagInexact,
	"raytrace":           fpspy.FlagInexact,
	"streamcluster":      fpspy.FlagInexact,
	"swaptions":          fpspy.FlagInexact,
	"vips":               fpspy.FlagInexact,
	"ext/volrend":        fpspy.FlagInexact,
	"ext/water_nsquared": fpspy.FlagUnderflow | fpspy.FlagInexact,
	"ext/water_spatial":  fpspy.FlagInexact,
	"x.264":              fpspy.FlagInvalid | fpspy.FlagInexact,
}

func aggregateEvents(t *testing.T, name string, size workload.Size) fpspy.Flags {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fpspy.Run(w.Build(size), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("%s: exit code %d", name, res.ExitCode)
	}
	var got fpspy.Flags
	for _, a := range res.Aggregates() {
		got |= a.Flags
	}
	return got
}

func TestParsecEventSetsMatchFigure10(t *testing.T) {
	if len(workload.Parsec()) != 25 {
		t.Fatalf("parsec suite has %d benchmarks, want 25", len(workload.Parsec()))
	}
	for name, want := range parsecEventSets {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			got := aggregateEvents(t, name, workload.SizeLarge)
			if got != want {
				t.Errorf("events = %v, want %v", got, want)
			}
		})
	}
}

func TestFluidanimateOverflowIsSizeDependent(t *testing.T) {
	// The paper: "on a different problem size, it did not produce an
	// Overflow."
	large := aggregateEvents(t, "fluidanimate", workload.SizeLarge)
	small := aggregateEvents(t, "fluidanimate", workload.SizeSmall)
	if large&fpspy.FlagOverflow == 0 {
		t.Error("large size lost its Overflow")
	}
	if small&fpspy.FlagOverflow != 0 {
		t.Error("small size should not overflow")
	}
}

func TestNASAllKernelsOnlyRound(t *testing.T) {
	kernels := workload.NAS()
	if len(kernels) != 8 {
		t.Fatalf("NAS suite has %d kernels, want 8", len(kernels))
	}
	for _, w := range kernels {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			got := aggregateEvents(t, w.Meta.Name, workload.SizeLarge)
			if got != fpspy.FlagInexact {
				t.Errorf("events = %v, want PE only", got)
			}
		})
	}
}

func TestSuiteUnionMatchesFigure9(t *testing.T) {
	// The PARSEC suite row of Figure 9: every event present (at the
	// sizes of our study: Overflow via fluidanimate at SizeLarge).
	var union fpspy.Flags
	for name := range parsecEventSets {
		union |= aggregateEvents(t, name, workload.SizeLarge)
	}
	want := fpspy.FlagInvalid | fpspy.FlagDenormal | fpspy.FlagDivideByZero |
		fpspy.FlagOverflow | fpspy.FlagUnderflow | fpspy.FlagInexact
	if union != want {
		t.Errorf("suite union = %v, want %v", union, want)
	}
}

func TestAllWorkloadsHaveDistinctNamesAndMeta(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range workload.All() {
		if seen[w.Meta.Name] {
			t.Errorf("duplicate workload %q", w.Meta.Name)
		}
		seen[w.Meta.Name] = true
		if w.Meta.Problem == "" || w.Meta.Languages == "" {
			t.Errorf("%s: incomplete metadata", w.Meta.Name)
		}
	}
	if len(workload.All()) != 7+25+8+7 {
		t.Errorf("registry has %d workloads, want 47", len(workload.All()))
	}
}
