// Package workload implements the FPSpy study's applications and
// benchmark suites as guest programs: the seven applications/frameworks
// of the paper's Figure 7, the NAS kernels, and the PARSEC benchmarks.
//
// Each workload is a genuine (miniaturized) numerical kernel — a
// molecular dynamics force loop, a Sedov blast hydrodynamics step, a
// finite-volume Navier-Stokes stencil, Black-Scholes pricing, an
// unpivoted LU factorization, and so on — whose problematic floating
// point events arise from the numerics, not from scripted event
// injection: LAGHOS really divides by degenerate cell volumes, LU on a
// singular matrix really computes 0/0, deep out-of-the-money options
// really underflow.
//
// Program sizes and event rates are scaled down ~1000x from the paper's
// production runs (the simulator retires tens of millions of
// instructions per second, not billions), preserving the *shape* of
// every result: which events occur in which code, relative Inexact
// rates, instruction-form and address locality, and temporal patterns.
package workload

import (
	"fmt"

	"repro/internal/binscan"
	"repro/internal/isa"
)

// Suite classifies workloads as in the paper's Figure 7.
type Suite string

const (
	// SuiteApp marks the seven applications/frameworks.
	SuiteApp Suite = "app"
	// SuiteParsec marks PARSEC 3.0 benchmarks.
	SuiteParsec Suite = "parsec"
	// SuiteNAS marks NAS 3.0 kernels.
	SuiteNAS Suite = "nas"
	// SuiteValidation marks the paper's Section 5 validation programs.
	SuiteValidation Suite = "validation"
)

// Size selects the problem size, the paper's "simlarge" vs smaller
// inputs (its Section 5.3 notes PARSEC's Overflow appears only at one
// problem size).
type Size int

const (
	// SizeSmall is a reduced input.
	SizeSmall Size = iota
	// SizeLarge is the study's default input.
	SizeLarge
)

// Meta carries the Figure 7 and Figure 8 bookkeeping for a workload.
type Meta struct {
	// Name is the workload's name as the paper spells it.
	Name string
	// Suite is the group it belongs to.
	Suite Suite
	// Languages lists implementation languages (Figure 7).
	Languages string
	// LOC is the paper-reported source size.
	LOC int
	// Deps lists the paper-reported dependencies.
	Deps []string
	// Problem is the example problem run in the study.
	Problem string
	// Concurrency is the single-node model used.
	Concurrency string
	// ExecTime is the paper-reported unencumbered execution time.
	ExecTime string
	// SourceRefs lists mechanisms found by static source analysis that
	// are not libc calls (SIG* macros, uc_mcontext fields, FE_ macros) —
	// the right-hand columns of Figure 8.
	SourceRefs []string
}

// Workload couples metadata with a program generator.
type Workload struct {
	// Meta is the bookkeeping.
	Meta Meta
	// Build generates the guest program at the given problem size.
	Build func(size Size) *isa.Program
}

var registry []*Workload

func register(w *Workload) *Workload {
	registry = append(registry, w)
	return w
}

// All returns every registered workload in registration order
// (applications, then PARSEC, then NAS).
func All() []*Workload { return registry }

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Meta.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// BySuite filters the registry.
func BySuite(s Suite) []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Meta.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// Apps returns the seven applications.
func Apps() []*Workload { return BySuite(SuiteApp) }

// Parsec returns the PARSEC benchmarks.
func Parsec() []*Workload { return BySuite(SuiteParsec) }

// NAS returns the NAS kernels.
func NAS() []*Workload { return BySuite(SuiteNAS) }

// StaticLibcUse scans a program's text for libc call sites — the
// simulated equivalent of the paper's grep/cscope source analysis pass
// (Figure 8). It reports symbols referenced anywhere in the binary,
// including dead branches, which is exactly why the paper distinguishes
// static presence from dynamic execution.
//
// Deprecated: use internal/binscan, which performs the same presence
// census as part of a full static analysis and additionally reports
// whether each referencing site is reachable. This function delegates
// to binscan and is kept for compatibility.
func StaticLibcUse(p *isa.Program) map[string]bool {
	return binscan.ScanProgram(p).PresentLibc()
}
