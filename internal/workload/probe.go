package workload

// FPRev-style accumulation-order probes (ROADMAP item 3; SNIPPETS.md §3).
//
// A probe is a guest program that runs one reduction kernel over every
// cancellation input of the FPRev sweep and encodes each trial's final
// sum into the monitor trace via two gadget sites, so that the
// accumulation tree the kernel *actually* used can be reconstructed
// from the trace alone (internal/analysis, RecoverProbeTree):
//
//   - Inputs: n values, all 1.0 except a[i] = M and a[j] = -M with
//     M = 2^60, so (n-2)+M == M exactly for every n <= 64 (the 1.0s
//     are absorbed by any partial sum holding a mass, and the masses
//     cancel exactly when they meet).
//   - The final sum f(i,j) = n - |leaves(LCA(i,j))| is a small exact
//     integer. The guest converts it to an integer (CVTTSD2SI, exact,
//     no flags), stores it to the out[] array (the memory channel the
//     unit tests cross-check), executes the *report gadget* — a MULSD
//     of 0.1*0.1, always Inexact — f times, then the *trial separator*
//     — a DIVSD of 1.0/0.0, always DivideByZero — once.
//
// MULSD and DIVSD appear nowhere else in a probe program (the kernels
// use ADDSD / VFMADDSD / VADDPDZ / VADDPDKZ), so an unsampled
// individual-mode trace is self-describing regardless of which engine
// produced it. That makes the probe an adversarial transparency oracle:
// if any engine, schedule, or routing layer perturbed guest FP
// behavior, the reconstructed tree — not merely the final bits — would
// change.
//
// Each kernel's guest code is emitted *from* its model tree (or, for
// the vector kernel, from real z-form vector instructions whose
// reduction provably computes the model tree), so the expected
// fingerprint is ground truth by construction. The broken-reassoc
// kernel deliberately violates this: its guest reduces in reversed
// order while its Expected tree claims the documented serial order —
// the suite's negative control.

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/isa"
)

// SuiteProbe marks the FPRev-style accumulation-order probes.
const SuiteProbe Suite = "probe"

// ProbeKind names a probe reduction kernel.
type ProbeKind string

const (
	// ProbeSerial is the left-to-right serial sum.
	ProbeSerial ProbeKind = "serial"
	// ProbePairwise is recursive pairwise (balanced-halving) summation.
	ProbePairwise ProbeKind = "pairwise"
	// ProbeBlocked sums fixed-width contiguous blocks serially, then
	// folds the block partials serially (OpenMP-static-schedule shape).
	ProbeBlocked ProbeKind = "blocked"
	// ProbeStrided assigns element k to lane k mod B (cyclic schedule),
	// sums each lane serially, then folds the lane partials.
	ProbeStrided ProbeKind = "strided"
	// ProbeFMADot is a dot product against an all-ones vector using a
	// serial VFMADDSD chain.
	ProbeFMADot ProbeKind = "fmadot"
	// ProbeVecMask is a z-form vectorized reduction: 8-lane VADDPDZ
	// over full chunks, a K-masked VADDPDKZ tail, then an in-lane-order
	// horizontal reduce.
	ProbeVecMask ProbeKind = "vecmask"
	// ProbeBrokenReassoc is the negative control: the guest sums in
	// reversed order while Expected claims the serial order.
	ProbeBrokenReassoc ProbeKind = "broken-reassoc"
)

// ProbeKinds lists every kernel kind in suite order.
func ProbeKinds() []ProbeKind {
	return []ProbeKind{
		ProbeSerial, ProbePairwise, ProbeBlocked, ProbeStrided,
		ProbeFMADot, ProbeVecMask, ProbeBrokenReassoc,
	}
}

// ProbeSpec parameterizes one probe program.
type ProbeSpec struct {
	// Kind selects the reduction kernel.
	Kind ProbeKind
	// N is the input count, 2..64 (the absorption bound of M = 2^60).
	N int
	// Param is the block width (blocked) or stride (strided); ignored
	// otherwise. Zero selects a kind-specific default.
	Param int
	// Companion adds a second pthread spinning integer work, giving the
	// kernel scheduler a task to shuffle/jitter against the probe.
	Companion bool
}

// Probe is a built probe program plus its ground truth.
type Probe struct {
	// Spec is the generating spec (Param resolved).
	Spec ProbeSpec
	// Prog is the guest program.
	Prog *isa.Program
	// Expected is the documented accumulation tree — what the kernel
	// claims to compute. Conformance compares recovered fingerprints
	// against Expected.Fingerprint().
	Expected *analysis.AccumTree
	// Emitted is the tree the guest actually evaluates. It differs
	// from Expected only for ProbeBrokenReassoc.
	Emitted *analysis.AccumTree
	// Trials is the sweep length n(n-1)/2.
	Trials int
	// OutAddr is the guest address of the out[] array of per-trial
	// f-values (binary64), the memory-channel cross-check.
	OutAddr uint64
	// ReportAddr and SepAddr are the code addresses of the two gadget
	// sites (single MULSD and DIVSD sites, shared by all trials).
	ReportAddr, SepAddr uint64
}

// probeMass is M: large enough that (n-2)+M == M for n <= 64
// (ulp(2^60) = 256 > 62), small enough that nothing overflows.
const probeMass = float64(1 << 60)

// probeMaxN is the largest sweep the absorption bound supports.
const probeMaxN = 64

// foldSerial left-folds the given leaves: ((l0 l1) l2) ...
func foldSerial(leaves []int) *analysis.AccumTree {
	t := analysis.AccumLeaf(leaves[0])
	for _, l := range leaves[1:] {
		t = analysis.AccumJoin(t, analysis.AccumLeaf(l))
	}
	return t
}

// foldPairwise builds the balanced halving tree over [lo, hi).
func foldPairwise(lo, hi int) *analysis.AccumTree {
	if hi-lo == 1 {
		return analysis.AccumLeaf(lo)
	}
	mid := lo + (hi-lo+1)/2
	return analysis.AccumJoin(foldPairwise(lo, mid), foldPairwise(mid, hi))
}

// laneIndices returns the element indices of lane l under a cyclic
// stride-B schedule over n elements.
func laneIndices(n, b, l int) []int {
	var idx []int
	for k := l; k < n; k += b {
		idx = append(idx, k)
	}
	return idx
}

// foldLanes serially folds the serial per-lane partials of a cyclic
// schedule, skipping empty lanes — the shared model of the strided and
// vectorized kernels.
func foldLanes(n, b int) *analysis.AccumTree {
	var parts []*analysis.AccumTree
	for l := 0; l < b; l++ {
		if idx := laneIndices(n, b, l); len(idx) > 0 {
			parts = append(parts, foldSerial(idx))
		}
	}
	t := parts[0]
	for _, p := range parts[1:] {
		t = analysis.AccumJoin(t, p)
	}
	return t
}

// foldBlocked serially folds the serial partials of fixed-width
// contiguous blocks.
func foldBlocked(n, b int) *analysis.AccumTree {
	var parts []*analysis.AccumTree
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			hi = n
		}
		idx := make([]int, 0, hi-lo)
		for k := lo; k < hi; k++ {
			idx = append(idx, k)
		}
		parts = append(parts, foldSerial(idx))
	}
	t := parts[0]
	for _, p := range parts[1:] {
		t = analysis.AccumJoin(t, p)
	}
	return t
}

// resolveParam fills in the kind-specific default width.
func resolveParam(spec ProbeSpec) int {
	if spec.Param > 0 {
		return spec.Param
	}
	switch spec.Kind {
	case ProbeBlocked:
		return 4
	case ProbeStrided:
		return 4
	case ProbeVecMask:
		return 8 // fixed: the z-form lane count
	}
	return 0
}

// ProbeModel returns the documented (Expected) accumulation tree for a
// spec.
func ProbeModel(spec ProbeSpec) (*analysis.AccumTree, error) {
	if spec.N < 2 || spec.N > probeMaxN {
		return nil, fmt.Errorf("probe: n=%d outside [2,%d]", spec.N, probeMaxN)
	}
	all := make([]int, spec.N)
	for i := range all {
		all[i] = i
	}
	switch spec.Kind {
	case ProbeSerial, ProbeFMADot, ProbeBrokenReassoc:
		return foldSerial(all), nil
	case ProbePairwise:
		return foldPairwise(0, spec.N), nil
	case ProbeBlocked:
		return foldBlocked(spec.N, resolveParam(spec)), nil
	case ProbeStrided:
		return foldLanes(spec.N, resolveParam(spec)), nil
	case ProbeVecMask:
		return foldLanes(spec.N, 8), nil
	}
	return nil, fmt.Errorf("probe: unknown kind %q", spec.Kind)
}

// emittedModel returns the tree the guest is actually built to compute.
func emittedModel(spec ProbeSpec) (*analysis.AccumTree, error) {
	if spec.Kind == ProbeBrokenReassoc {
		rev := make([]int, spec.N)
		for i := range rev {
			rev[i] = spec.N - 1 - i
		}
		return foldSerial(rev), nil
	}
	return ProbeModel(spec)
}

// treeNeed is the Sethi-Ullman register need of a (binary) tree.
func treeNeed(t *analysis.AccumTree) int {
	if t.IsLeaf() {
		return 1
	}
	if len(t.Kids) != 2 {
		panic("probe: scalar emission requires a binary tree")
	}
	l, r := treeNeed(t.Kids[0]), treeNeed(t.Kids[1])
	if l == r {
		return l + 1
	}
	if l > r {
		return l
	}
	return r
}

// emitScalarTree emits a Sethi-Ullman evaluation of the tree into
// X(reg), loading leaves from the array based at R9. Registers
// X(reg)..X(reg+need-1) are clobbered; the add order follows the tree
// exactly, so the guest's association *is* the tree.
func emitScalarTree(b *isa.Builder, t *analysis.AccumTree, reg int) {
	if t.IsLeaf() {
		b.Fld(reg, isa.R9, int64(8*t.Leaf))
		return
	}
	k0, k1 := t.Kids[0], t.Kids[1]
	// Evaluate the needier child first so the whole tree fits in
	// need(t) registers (commuting the evaluation order is invisible:
	// IEEE addition is bit-commutative and leaf loads raise nothing).
	if treeNeed(k1) > treeNeed(k0) {
		k0, k1 = k1, k0
	}
	emitScalarTree(b, k0, reg)
	emitScalarTree(b, k1, reg+1)
	b.FP2(isa.OpADDSD, reg, reg, reg+1)
}

// Fixed register/vector-register conventions of probe programs.
const (
	probeXOne     = 10 // X10 = 1.0 (FMA multiplier, separator dividend)
	probeXTenth   = 11 // X11 = 0.1 (report gadget operand)
	probeXZero    = 12 // X12 = 0.0 (separator divisor)
	probeXScratch = 13 // X13 = gadget destination
	probeXAcc     = 8  // X8 = vector accumulator
	probeXChunk   = 9  // X9 = vector chunk
)

// BuildProbe assembles the probe program for a spec, returning it with
// its ground-truth trees and gadget addresses.
func BuildProbe(spec ProbeSpec) (*Probe, error) {
	expected, err := ProbeModel(spec)
	if err != nil {
		return nil, err
	}
	emitted, err := emittedModel(spec)
	if err != nil {
		return nil, err
	}
	if need := treeNeed(emitted); spec.Kind != ProbeVecMask && need > 8 {
		return nil, fmt.Errorf("probe: %s n=%d needs %d scalar registers (have 8)", spec.Kind, spec.N, need)
	}
	spec.Param = resolveParam(spec)

	name := fmt.Sprintf("probe-%s", spec.Kind)
	b := isa.NewBuilder(name)

	// Per-trial input arrays. The vector kernel reads full 8-lane
	// chunks, so its arrays are padded to a lane-count multiple with
	// zeros (+0.0 adds are exact and invisible).
	n := spec.N
	pairs := analysis.ProbePairs(n)
	stride := n
	if spec.Kind == ProbeVecMask {
		stride = (n + 7) / 8 * 8
	}
	trialAddrs := make([]uint64, len(pairs))
	for t, pr := range pairs {
		vals := make([]float64, stride)
		for k := 0; k < n; k++ {
			vals[k] = 1.0
		}
		vals[pr[0]] = probeMass
		vals[pr[1]] = -probeMass
		trialAddrs[t] = b.Float64s(vals...)
	}
	outAddr := b.Zeros(len(pairs) * 8)
	var vecZero, vecScratch uint64
	if spec.Kind == ProbeVecMask {
		vecZero = b.Zeros(64)    // never written: the 512-bit zero accumulator image
		vecScratch = b.Zeros(64) // horizontal-reduce spill slot
	}

	kernel := b.Label("kernel")
	report := b.Label("report")
	worker := b.Label("worker")

	// --- main ---
	if spec.Companion {
		b.Lea(isa.R1, worker)
		b.Movi(isa.R2, 0)
		b.CallC("pthread_create")
	}
	fconst(b, probeXOne, 1.0)
	fconst(b, probeXTenth, 0.1)
	fconst(b, probeXZero, 0.0)
	b.Movi(isa.R12, int64(outAddr))
	for t := range pairs {
		b.Movi(isa.R9, int64(trialAddrs[t]))
		b.Call(kernel)                    // X0 = kernel(a)
		b.Fst(isa.R12, int64(8*t), 0)     // out[t] = f (memory channel)
		b.Cvt(isa.OpCVTTSD2SI, isa.R8, 0) // exact: raises nothing
		b.Call(report)                    // f reports + separator
	}
	b.Hlt()

	// --- kernel: X0 = reduce(mem[R9..]) ---
	b.Bind(kernel)
	switch spec.Kind {
	case ProbeFMADot:
		// acc = 0; acc = a[k]*1.0 + acc. The first FMA (a[0]*1.0 +
		// 0.0) and every product are exact; the chain's adds absorb
		// exactly as the serial sum does.
		b.Movi(isa.R7, 0)
		b.Movqx(0, isa.R7)
		for k := 0; k < n; k++ {
			b.Fld(1, isa.R9, int64(8*k))
			b.FMA(isa.OpVFMADDSD, 0, 1, probeXOne, 0)
		}
	case ProbeVecMask:
		// acc[0:8] = 0; full chunks via VADDPDZ, tail via K-masked
		// VADDPDKZ (masked-off lanes keep acc and raise nothing), then
		// a horizontal reduce in lane order. Lane l accumulates
		// elements l, l+8, ... — the cyclic stride-8 model tree.
		b.Movi(isa.R7, int64(vecZero))
		b.Fldvz(probeXAcc, isa.R7, 0)
		full, tail := n/8, n%8
		for c := 0; c < full; c++ {
			b.Fldvz(probeXChunk, isa.R9, int64(64*c))
			b.FP2(isa.OpVADDPDZ, probeXAcc, probeXAcc, probeXChunk)
		}
		if tail > 0 {
			b.Fldvz(probeXChunk, isa.R9, int64(64*full))
			b.Movi(isa.R7, int64(1<<tail)-1)
			b.Kmovq(1, isa.R7)
			b.FP2Masked(isa.OpVADDPDKZ, probeXAcc, probeXAcc, probeXChunk, 1)
		}
		b.Movi(isa.R7, int64(vecScratch))
		b.Fstvz(isa.R7, 0, probeXAcc)
		lanes := 8
		if n < 8 {
			lanes = n
		}
		b.Fld(0, isa.R7, 0)
		for l := 1; l < lanes; l++ {
			b.Fld(1, isa.R7, int64(8*l))
			b.FP2(isa.OpADDSD, 0, 0, 1)
		}
	default:
		emitScalarTree(b, emitted, 0)
	}
	b.Ret()

	// --- report: execute R8 report gadgets, then one separator ---
	b.Bind(report)
	b.Movi(isa.R10, 0)
	rtop := b.Label("rtop")
	rdone := b.Label("rdone")
	b.Bind(rtop)
	b.Bge(isa.R10, isa.R8, rdone)
	reportIdx := b.Len()
	b.FP2(isa.OpMULSD, probeXScratch, probeXTenth, probeXTenth) // 0.1*0.1: always Inexact
	b.Addi(isa.R10, isa.R10, 1)
	b.Jmp(rtop)
	b.Bind(rdone)
	sepIdx := b.Len()
	b.FP2(isa.OpDIVSD, probeXScratch, probeXOne, probeXZero) // 1.0/0.0: always DivideByZero
	b.Ret()

	// --- companion: integer-only spin, then exit ---
	if spec.Companion {
		b.Bind(worker)
		busyloop(b, isa.R4, isa.R5, 30000)
		b.Movi(isa.R1, 0)
		b.CallC("pthread_exit")
	} else {
		// Keep the label universe identical across variants.
		b.Bind(worker)
		b.Hlt()
	}

	prog := b.Build()
	return &Probe{
		Spec:       spec,
		Prog:       prog,
		Expected:   expected,
		Emitted:    emitted,
		Trials:     len(pairs),
		OutAddr:    outAddr,
		ReportAddr: prog.AddrOf(reportIdx),
		SepAddr:    prog.AddrOf(sepIdx),
	}, nil
}

// ProbeOut decodes the memory-channel f-matrix from a finished guest's
// flat memory image: the out[] array of per-trial final sums.
func ProbeOut(mem []byte, outAddr uint64, trials int) ([]float64, error) {
	end := outAddr + uint64(trials)*8
	if end > uint64(len(mem)) {
		return nil, fmt.Errorf("probe: out array [%#x,%#x) outside %d-byte memory", outAddr, end, len(mem))
	}
	out := make([]float64, trials)
	for t := range out {
		var bits uint64
		for i := 0; i < 8; i++ {
			bits |= uint64(mem[outAddr+uint64(8*t+i)]) << (8 * i)
		}
		out[t] = math.Float64frombits(bits)
	}
	return out, nil
}

// DefaultProbeSpec is the registry/problem-size mapping for a kind.
func DefaultProbeSpec(kind ProbeKind, size Size) ProbeSpec {
	small := map[ProbeKind]ProbeSpec{
		ProbeSerial:        {Kind: ProbeSerial, N: 6},
		ProbePairwise:      {Kind: ProbePairwise, N: 8},
		ProbeBlocked:       {Kind: ProbeBlocked, N: 6, Param: 2},
		ProbeStrided:       {Kind: ProbeStrided, N: 6, Param: 3},
		ProbeFMADot:        {Kind: ProbeFMADot, N: 6},
		ProbeVecMask:       {Kind: ProbeVecMask, N: 10},
		ProbeBrokenReassoc: {Kind: ProbeBrokenReassoc, N: 4},
	}
	large := map[ProbeKind]ProbeSpec{
		ProbeSerial:        {Kind: ProbeSerial, N: 10},
		ProbePairwise:      {Kind: ProbePairwise, N: 16},
		ProbeBlocked:       {Kind: ProbeBlocked, N: 12, Param: 3},
		ProbeStrided:       {Kind: ProbeStrided, N: 12, Param: 4},
		ProbeFMADot:        {Kind: ProbeFMADot, N: 10},
		ProbeVecMask:       {Kind: ProbeVecMask, N: 12},
		ProbeBrokenReassoc: {Kind: ProbeBrokenReassoc, N: 6},
	}
	if size == SizeSmall {
		return small[kind]
	}
	return large[kind]
}

// mustBuildProbe is the registry adapter: specs from DefaultProbeSpec
// are valid by construction.
func mustBuildProbe(kind ProbeKind, size Size) *isa.Program {
	p, err := BuildProbe(DefaultProbeSpec(kind, size))
	if err != nil {
		panic(err)
	}
	return p.Prog
}

func probeMeta(kind ProbeKind, problem string) Meta {
	return Meta{
		Name:        fmt.Sprintf("probe-%s", kind),
		Suite:       SuiteProbe,
		Languages:   "generated",
		Problem:     problem,
		Concurrency: "serial",
	}
}

// Probes returns the probe suite.
func Probes() []*Workload { return BySuite(SuiteProbe) }

var (
	_ = register(&Workload{
		Meta:  probeMeta(ProbeSerial, "FPRev sweep of a left-to-right serial sum"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeSerial, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbePairwise, "FPRev sweep of recursive pairwise summation"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbePairwise, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbeBlocked, "FPRev sweep of a blocked (static-schedule) sum"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeBlocked, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbeStrided, "FPRev sweep of a cyclic strided sum"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeStrided, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbeFMADot, "FPRev sweep of an FMA dot product against ones"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeFMADot, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbeVecMask, "FPRev sweep of a K-masked z-form vector reduction"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeVecMask, size) },
	})
	_ = register(&Workload{
		Meta:  probeMeta(ProbeBrokenReassoc, "negative control: reversed reduction vs serial claim"),
		Build: func(size Size) *isa.Program { return mustBuildProbe(ProbeBrokenReassoc, size) },
	})
)
