// Root-cause attribution: ranking floating point instruction sites by
// the rounding error they introduce, from the per-site accounting the
// shadow-precision channel (internal/shadow) accumulates. This is the
// Herbgrind-shaped complement of the paper's rank-popularity analysis:
// instead of ranking sites by how many *events* they raise, sites are
// ranked by how much *error* they inject, and the same 99%-coverage
// locality statistic tells whether mitigation effort concentrates.
package analysis

import "sort"

// RootCauseSite is one attributed instruction site. LocalUlps is the
// error the site's own rounding introduced — the sum over its dynamic
// executions of |exact − native| / ulp(native), where exact recomputes
// the op from the native inputs at high precision (≤ 0.5 per correctly
// rounded execution, exactly 0 for exact ones). PropUlps is divergence
// the site merely inherited through drifted shadow operands (total
// minus local, clamped at 0 per sample). The split is sound because
// both terms are measured against the same native output: subtracting
// the locally introduced part from the whole-divergence leaves only
// what the operands carried in.
type RootCauseSite struct {
	// Addr is the instruction address.
	Addr uint64 `json:"addr"`
	// Op is the instruction form name (e.g. "addsd").
	Op string `json:"op"`
	// Count is the number of shadow-executed lane operations.
	Count uint64 `json:"count"`
	// Diverged counts executions whose shadow rounded to different
	// native-format bits than the hardware produced.
	Diverged uint64 `json:"diverged,omitempty"`
	// NonFinite counts executions skipped under the NaN/Inf policy.
	NonFinite uint64 `json:"nonFinite,omitempty"`
	// LocalUlps is the accumulated local error in fractional ULPs.
	LocalUlps float64 `json:"localUlps"`
	// LocalRel is the accumulated local relative error.
	LocalRel float64 `json:"localRel"`
	// PropUlps is the accumulated propagated (inherited) error.
	PropUlps float64 `json:"propUlps"`
	// TotalUlps is the accumulated native-vs-shadow divergence.
	TotalUlps float64 `json:"totalUlps"`
	// MaxUlps is the largest integer ULP divergence observed.
	MaxUlps uint64 `json:"maxUlps"`
}

// MergeRootCauseSite folds b into a (same site, e.g. from two threads).
// The merge is commutative and associative — sums and maxes only — so
// aggregation order never changes a report.
func MergeRootCauseSite(a, b RootCauseSite) RootCauseSite {
	a.Count += b.Count
	a.Diverged += b.Diverged
	a.NonFinite += b.NonFinite
	a.LocalUlps += b.LocalUlps
	a.LocalRel += b.LocalRel
	a.PropUlps += b.PropUlps
	a.TotalUlps += b.TotalUlps
	if b.MaxUlps > a.MaxUlps {
		a.MaxUlps = b.MaxUlps
	}
	if a.Op == "" {
		a.Op = b.Op
	}
	return a
}

// RootCauseReport ranks attributed sites by contributed (local) error.
type RootCauseReport struct {
	// Prec is the shadow precision the attribution ran at.
	Prec uint64 `json:"prec"`
	// Sites is ranked by LocalUlps descending (ties by address).
	Sites []RootCauseSite `json:"sites"`
	// TotalOps is the number of shadow-executed lane operations.
	TotalOps uint64 `json:"totalOps"`
	// TotalLocalUlps is the error injected across all sites.
	TotalLocalUlps float64 `json:"totalLocalUlps"`
	// MaxUlps is the largest integer ULP divergence anywhere.
	MaxUlps uint64 `json:"maxUlps"`
	// Sites99 is the number of top-ranked sites covering 99% of
	// TotalLocalUlps — the locality statistic the paper's Section 6
	// feasibility argument rests on, over error mass instead of event
	// counts.
	Sites99 int `json:"sites99"`
}

// BuildRootCause assembles the ranked report from attribution rows
// (merging duplicates, so rows from multiple threads can be
// concatenated first).
func BuildRootCause(prec uint64, sites []RootCauseSite) *RootCauseReport {
	byAddr := make(map[uint64]RootCauseSite, len(sites))
	for _, s := range sites {
		byAddr[s.Addr] = MergeRootCauseSite(byAddr[s.Addr], RootCauseSite{
			Op: s.Op, Count: s.Count, Diverged: s.Diverged, NonFinite: s.NonFinite,
			LocalUlps: s.LocalUlps, LocalRel: s.LocalRel, PropUlps: s.PropUlps,
			TotalUlps: s.TotalUlps, MaxUlps: s.MaxUlps,
		})
	}
	rep := &RootCauseReport{Prec: prec, Sites: make([]RootCauseSite, 0, len(byAddr))}
	for addr, s := range byAddr {
		s.Addr = addr
		rep.Sites = append(rep.Sites, s)
		rep.TotalOps += s.Count
		rep.TotalLocalUlps += s.LocalUlps
		if s.MaxUlps > rep.MaxUlps {
			rep.MaxUlps = s.MaxUlps
		}
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.LocalUlps != b.LocalUlps {
			return a.LocalUlps > b.LocalUlps
		}
		return a.Addr < b.Addr
	})
	rep.Sites99 = rootCauseCoverage(rep.Sites, rep.TotalLocalUlps, 0.99)
	return rep
}

// TopSite returns the highest-ranked site, ok=false for an empty report.
func (r *RootCauseReport) TopSite() (RootCauseSite, bool) {
	if len(r.Sites) == 0 {
		return RootCauseSite{}, false
	}
	return r.Sites[0], true
}

// rootCauseCoverage counts the ranked prefix covering frac of the total
// error mass (CoverageCount over float weights). A zero-error report
// needs zero sites.
func rootCauseCoverage(sites []RootCauseSite, total float64, frac float64) int {
	if total <= 0 {
		return 0
	}
	var sum float64
	for i, s := range sites {
		sum += s.LocalUlps
		if sum >= frac*total {
			return i + 1
		}
	}
	return len(sites)
}
