package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/softfloat"
	"repro/internal/trace"
	"repro/internal/workload"
)

func model(t testing.TB, kind workload.ProbeKind, n int) *analysis.AccumTree {
	t.Helper()
	m, err := workload.ProbeModel(workload.ProbeSpec{Kind: kind, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenFingerprints pins canonical forms and fingerprints for the
// suite's kernel shapes. A fingerprint change here is a change to the
// canonicalization itself and invalidates every stored corpus — bump
// deliberately.
func TestGoldenFingerprints(t *testing.T) {
	cases := []struct {
		kind      workload.ProbeKind
		n         int
		canonical string
		golden    string
	}{
		{workload.ProbeSerial, 2, "(0 1)", "accum:n=2:8501b6d56e4bb161"},
		{workload.ProbeSerial, 3, "((0 1) 2)", "accum:n=3:c3f610da8ac53351"},
		{workload.ProbeSerial, 4, "(((0 1) 2) 3)", "accum:n=4:d1cc2bc2ba960123"},
		{workload.ProbeSerial, 8, "(((((((0 1) 2) 3) 4) 5) 6) 7)", "accum:n=8:59b63a87a845cc24"},
		{workload.ProbeSerial, 64, "", "accum:n=64:0baac1cb5d30a023"},
		{workload.ProbePairwise, 4, "((0 1) (2 3))", "accum:n=4:ba883afbbfa8f930"},
		{workload.ProbePairwise, 8, "(((0 1) (2 3)) ((4 5) (6 7)))", "accum:n=8:cc208b8f468d1dee"},
		{workload.ProbePairwise, 16, "((((0 1) (2 3)) ((4 5) (6 7))) (((8 9) (10 11)) ((12 13) (14 15))))", "accum:n=16:8709932edd30c722"},
		{workload.ProbePairwise, 64, "", "accum:n=64:bd222fa670b029de"},
		{workload.ProbeBlocked, 8, "((((0 1) 2) 3) (((4 5) 6) 7))", "accum:n=8:2682f61bb88e180c"},
		{workload.ProbeBlocked, 16, "((((((0 1) 2) 3) (((4 5) 6) 7)) (((8 9) 10) 11)) (((12 13) 14) 15))", "accum:n=16:0f37c182f1339755"},
		{workload.ProbeBlocked, 64, "", "accum:n=64:ff7cbbb18988057a"},
		{workload.ProbeStrided, 8, "((((0 4) (1 5)) (2 6)) (3 7))", "accum:n=8:d07bb4a7a87c0be5"},
		{workload.ProbeStrided, 64, "", "accum:n=64:01068ceb74948d53"},
		{workload.ProbeVecMask, 8, "(((((((0 1) 2) 3) 4) 5) 6) 7)", "accum:n=8:59b63a87a845cc24"},
		{workload.ProbeVecMask, 16, "((((((((0 8) (1 9)) (2 10)) (3 11)) (4 12)) (5 13)) (6 14)) (7 15))", "accum:n=16:b48b6c45ab998939"},
		{workload.ProbeVecMask, 64, "", "accum:n=64:dabc8306020e3e10"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.kind)+"/"+itoa(tc.n), func(t *testing.T) {
			m := model(t, tc.kind, tc.n)
			if tc.canonical != "" && m.Canonical() != tc.canonical {
				t.Errorf("canonical = %s, want %s", m.Canonical(), tc.canonical)
			}
			if got := m.Fingerprint(); got != tc.golden {
				t.Errorf("fingerprint = %s, want %s", got, tc.golden)
			}
		})
	}
	one := analysis.AccumLeaf(0)
	if one.Fingerprint() != "accum:n=1:5feceb66ffc86f38" {
		t.Errorf("n=1 fingerprint = %s", one.Fingerprint())
	}
}

// TestCommutedOperandsCanonicalize checks the equivalence class:
// swapping add operand order anywhere in the tree (bit-invisible under
// IEEE addition) does not change the canonical form, while any actual
// reassociation does.
func TestCommutedOperandsCanonicalize(t *testing.T) {
	l := analysis.AccumLeaf
	serial := analysis.AccumJoin(analysis.AccumJoin(l(0), l(1)), l(2))
	commuted := analysis.AccumJoin(l(2), analysis.AccumJoin(l(1), l(0)))
	if serial.Canonical() != commuted.Canonical() {
		t.Errorf("commuted form %s != %s", commuted.Canonical(), serial.Canonical())
	}
	if serial.Fingerprint() != commuted.Fingerprint() {
		t.Errorf("commuted fingerprint differs")
	}
	reassoc := analysis.AccumJoin(l(0), analysis.AccumJoin(l(1), l(2)))
	if serial.Canonical() == reassoc.Canonical() {
		t.Errorf("reassociated tree canonicalized to the serial form %s", serial.Canonical())
	}

	// Deep commutation: mirror every node of the pairwise n=16 tree.
	base := model(t, workload.ProbePairwise, 16)
	var mirror func(*analysis.AccumTree) *analysis.AccumTree
	mirror = func(n *analysis.AccumTree) *analysis.AccumTree {
		if n.IsLeaf() {
			return analysis.AccumLeaf(n.Leaf)
		}
		kids := make([]*analysis.AccumTree, 0, len(n.Kids))
		for i := len(n.Kids) - 1; i >= 0; i-- {
			kids = append(kids, mirror(n.Kids[i]))
		}
		return analysis.AccumJoin(kids...)
	}
	if got := mirror(base).Fingerprint(); got != base.Fingerprint() {
		t.Errorf("mirrored pairwise fingerprint %s != %s", got, base.Fingerprint())
	}
}

// TestBoundarySizesRoundTrip covers n=1..64: every kernel shape's model
// tree survives LCA-matrix recovery exactly, and the shapes that must
// be distinguishable are. Recovery is cubic-ish in n, so short mode
// checks only the boundary and power-of-two neighborhoods; the full
// sweep runs in long mode.
func TestBoundarySizesRoundTrip(t *testing.T) {
	kinds := []workload.ProbeKind{
		workload.ProbeSerial, workload.ProbePairwise,
		workload.ProbeBlocked, workload.ProbeStrided, workload.ProbeVecMask,
	}
	if rt, err := analysis.RecoverAccumTree(1, func(i, j int) int { panic("no pairs") }); err != nil || rt.Canonical() != "0" {
		t.Fatalf("n=1 recovery = %v, %v", rt, err)
	}
	sizes := make([]int, 0, 63)
	if testing.Short() {
		sizes = append(sizes, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64)
	} else {
		for n := 2; n <= 64; n++ {
			sizes = append(sizes, n)
		}
	}
	for _, n := range sizes {
		for _, kind := range kinds {
			m := model(t, kind, n)
			rt, err := analysis.RecoverAccumTree(n, m.LCASize)
			if err != nil {
				t.Fatalf("%s n=%d: recover: %v", kind, n, err)
			}
			if rt.Canonical() != m.Canonical() {
				t.Fatalf("%s n=%d: recovered %s, want %s", kind, n, rt.Canonical(), m.Canonical())
			}
			if fp := m.Fingerprint(); !strings.HasPrefix(fp, "accum:n="+itoa(n)+":") {
				t.Fatalf("%s n=%d: malformed fingerprint %s", kind, n, fp)
			}
		}
		// Serial and pairwise association coincide only below n=4.
		serial, pairwise := model(t, workload.ProbeSerial, n), model(t, workload.ProbePairwise, n)
		if same := serial.Fingerprint() == pairwise.Fingerprint(); same != (n < 4) {
			t.Fatalf("n=%d: serial/pairwise fingerprint equality = %v", n, same)
		}
	}
}

// TestRecoverRejectsInconsistentMatrices drives the validation paths:
// matrices no tree can produce must error, not mis-reconstruct.
func TestRecoverRejectsInconsistentMatrices(t *testing.T) {
	cases := []struct {
		name string
		n    int
		sub  func(i, j int) int
	}{
		{"merged-but-full", 3, func(i, j int) int {
			// {0,1} and {0,2} proper subtrees force all three leaves into
			// one component, yet (1,2) claims the root: no partition.
			if i == 0 {
				return 2
			}
			return 3
		}},
		{"undersized-lca", 4, func(i, j int) int { return 1 }},
		{"oversized-lca", 3, func(i, j int) int { return 5 }},
		{"cyclic-overlap", 4, func(i, j int) int {
			// Claims {0,1}, {1,2}, {2,3} are all proper subtrees: their
			// union-find closure merges everything, leaving no partition.
			if j == i+1 {
				return 2
			}
			return 4
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tree, err := analysis.RecoverAccumTree(tc.n, tc.sub); err == nil {
				t.Fatalf("recovered %s from an impossible matrix", tree.Canonical())
			}
		})
	}
	if _, err := analysis.RecoverAccumTree(0, nil); err == nil {
		t.Fatal("n=0 recovered")
	}

	// A matrix where every pair meets at the root is not binary-tree
	// representable, but it is the signature of a simultaneous k-way
	// join; recovery deliberately returns the wide node (whose
	// fingerprint no binary kernel can collide with).
	wide, err := analysis.RecoverAccumTree(3, func(i, j int) int { return 3 })
	if err != nil {
		t.Fatalf("wide-join matrix rejected: %v", err)
	}
	if wide.Canonical() != "(0 1 2)" {
		t.Fatalf("wide-join recovery = %s, want (0 1 2)", wide.Canonical())
	}
}

// synthTrace builds the gadget-record stream a probe run with the given
// per-trial f-values would produce (interleaved with noise records that
// the extraction must ignore).
func synthTrace(fvals []int, noise bool) []trace.Record {
	var recs []trace.Record
	seq := uint64(0)
	add := func(op isa.Opcode, raised softfloat.Flags, tid uint32) {
		recs = append(recs, trace.Record{
			Seq: seq, TID: tid, Opcode: uint16(op), Raised: raised,
		})
		seq++
	}
	for _, f := range fvals {
		if noise {
			add(isa.OpADDSD, softfloat.FlagInexact, 1) // kernel absorption event
		}
		for k := 0; k < f; k++ {
			add(isa.OpMULSD, softfloat.FlagInexact, 1)
		}
		if noise {
			add(isa.OpMULSD, 0, 1) // exact MULSD: not a report
			add(isa.OpDIVSD, softfloat.FlagInexact, 1)
		}
		add(isa.OpDIVSD, softfloat.FlagDivideByZero, 1)
	}
	return recs
}

func fvalsOf(tree *analysis.AccumTree) []int {
	n := tree.LeafCount()
	pairs := analysis.ProbePairs(n)
	f := make([]int, len(pairs))
	for t, pr := range pairs {
		f[t] = n - tree.LCASize(pr[0], pr[1])
	}
	return f
}

// TestProbeTrialCountsContract covers the trace-extraction edge cases.
func TestProbeTrialCountsContract(t *testing.T) {
	m := model(t, workload.ProbeBlocked, 8)
	recs := synthTrace(fvalsOf(m), true)
	rt, err := analysis.RecoverProbeTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Canonical() != m.Canonical() {
		t.Fatalf("recovered %s, want %s", rt.Canonical(), m.Canonical())
	}

	if _, err := analysis.RecoverProbeTree(synthTrace([]int{1, 2}, false)); err == nil {
		t.Error("2 trials accepted (not triangular)")
	}
	if _, err := analysis.RecoverProbeTree(synthTrace([]int{5}, false)); err == nil {
		t.Error("f > n-2 accepted")
	}
	if _, err := analysis.RecoverProbeTree(nil); err == nil {
		t.Error("empty trace accepted")
	}

	trailing := synthTrace([]int{0}, false)
	trailing = append(trailing, trace.Record{Seq: 99, TID: 1, Opcode: uint16(isa.OpMULSD), Raised: softfloat.FlagInexact})
	if _, err := analysis.ProbeTrialCounts(trailing); err == nil {
		t.Error("trailing reports accepted")
	}

	crossTID := synthTrace([]int{0}, false)
	crossTID = append(crossTID, trace.Record{Seq: 100, TID: 2, Opcode: uint16(isa.OpDIVSD), Raised: softfloat.FlagDivideByZero})
	if _, err := analysis.ProbeTrialCounts(crossTID); err == nil {
		t.Error("multi-thread gadget stream accepted")
	}

	// Out-of-order delivery (cluster reassembly) must not matter: Seq
	// ordering is authoritative.
	shuffled := synthTrace(fvalsOf(m), false)
	for i := 0; i < len(shuffled)-1; i += 2 {
		shuffled[i], shuffled[i+1] = shuffled[i+1], shuffled[i]
	}
	rt2, err := analysis.RecoverProbeTree(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Fingerprint() != m.Fingerprint() {
		t.Fatalf("shuffled trace recovered %s, want %s", rt2.Fingerprint(), m.Fingerprint())
	}
}

func itoa(n int) string {
	digits := "0123456789"
	if n < 10 {
		return digits[n : n+1]
	}
	return itoa(n/10) + digits[n%10:n%10+1]
}
