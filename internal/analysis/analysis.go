// Package analysis implements the trace analyses of the FPSpy paper's
// evaluation: rank-popularity distributions over instruction forms
// (Figure 17) and instruction addresses (Figure 19), the cross-code form
// histogram with its GROMACS-only tail (Figure 18), event-rate time
// series (Figures 12 and 13), inexact counts and rates (Figure 15), and
// cumulative event curves (Figure 16).
package analysis

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// RankEntry is one entry of a rank-popularity distribution.
type RankEntry struct {
	// Key is the instruction form mnemonic or the formatted address.
	Key string
	// Count is the number of captured events attributed to the key.
	Count uint64
}

// rank builds a descending rank-popularity list from a counting map.
func rank(counts map[string]uint64) []RankEntry {
	out := make([]RankEntry, 0, len(counts))
	for k, c := range counts {
		out = append(out, RankEntry{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// RankByForm counts captured events by instruction form, most popular
// first (the paper's Figure 17).
func RankByForm(recs []trace.Record) []RankEntry {
	counts := make(map[string]uint64)
	for i := range recs {
		counts[isa.Opcode(recs[i].Opcode).String()]++
	}
	return rank(counts)
}

// RankByAddress counts captured events by faulting instruction address
// (the paper's Figure 19).
func RankByAddress(recs []trace.Record) []RankEntry {
	counts := make(map[uint64]uint64)
	for i := range recs {
		counts[recs[i].Rip]++
	}
	out := make([]RankEntry, 0, len(counts))
	for a, c := range counts {
		out = append(out, RankEntry{Key: FormatAddr(a), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// FormatAddr renders an instruction address as the analyses and rank
// tables print it (0x-prefixed lowercase hex).
func FormatAddr(v uint64) string {
	const digits = "0123456789abcdef"
	buf := [18]byte{'0', 'x'}
	n := 2
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xF
		if d != 0 || started || shift == 0 {
			buf[n] = digits[d]
			n++
			started = true
		}
	}
	return string(buf[:n])
}

// CoverageCount returns how many top-ranked entries are needed to cover
// the given fraction of all events — the "<5 forms cover >99%" statistic.
func CoverageCount(entries []RankEntry, fraction float64) int {
	var total uint64
	for _, e := range entries {
		total += e.Count
	}
	if total == 0 {
		return 0
	}
	target := uint64(fraction * float64(total))
	var cum uint64
	for i, e := range entries {
		cum += e.Count
		if cum >= target {
			return i + 1
		}
	}
	return len(entries)
}

// FilterEvent keeps records whose delivered event matches the flag.
func FilterEvent(recs []trace.Record, flag softfloat.Flags) []trace.Record {
	var out []trace.Record
	for i := range recs {
		if recs[i].Event == flag {
			out = append(out, recs[i])
		}
	}
	return out
}

// RatePoint is one bin of an event-rate time series.
type RatePoint struct {
	// TimeSec is the bin's start time in seconds.
	TimeSec float64
	// EventsPerSec is the bin's event rate.
	EventsPerSec float64
}

// RateSeries bins records by timestamp into bins of binSeconds at the
// given clock rate, producing events/second over time (Figures 12, 13).
func RateSeries(recs []trace.Record, binSeconds float64, hz float64) []RatePoint {
	if len(recs) == 0 {
		return nil
	}
	binCycles := binSeconds * hz
	var maxT uint64
	for i := range recs {
		if recs[i].Time > maxT {
			maxT = recs[i].Time
		}
	}
	nbins := int(float64(maxT)/binCycles) + 1
	bins := make([]uint64, nbins)
	for i := range recs {
		bins[int(float64(recs[i].Time)/binCycles)]++
	}
	out := make([]RatePoint, nbins)
	for i, c := range bins {
		out[i] = RatePoint{
			TimeSec:      float64(i) * binSeconds,
			EventsPerSec: float64(c) / binSeconds,
		}
	}
	return out
}

// CumPoint is one step of a cumulative event curve.
type CumPoint struct {
	// TimeSec is the event time in seconds.
	TimeSec float64
	// Count is the cumulative number of events at that time.
	Count uint64
}

// Cumulative produces the running event count over time (Figure 16).
func Cumulative(recs []trace.Record, hz float64) []CumPoint {
	sorted := append([]trace.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	out := make([]CumPoint, len(sorted))
	for i := range sorted {
		out[i] = CumPoint{TimeSec: float64(sorted[i].Time) / hz, Count: uint64(i + 1)}
	}
	return out
}

// FormUsage summarizes, across a set of codes, which instruction forms
// each uses (Figure 18).
type FormUsage struct {
	// CodesByForm maps each form to the codes whose traces contain it.
	CodesByForm map[string][]string
	// UniqueTo maps each code to the forms only it uses.
	UniqueTo map[string][]string
}

// FormsAcrossCodes builds the Figure 18 histogram input from per-code
// record sets.
func FormsAcrossCodes(byCode map[string][]trace.Record) FormUsage {
	usage := FormUsage{
		CodesByForm: make(map[string][]string),
		UniqueTo:    make(map[string][]string),
	}
	codeForms := make(map[string]map[string]bool)
	names := make([]string, 0, len(byCode))
	for name := range byCode {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		forms := make(map[string]bool)
		for i := range byCode[name] {
			forms[isa.Opcode(byCode[name][i].Opcode).String()] = true
		}
		codeForms[name] = forms
		for f := range forms {
			usage.CodesByForm[f] = append(usage.CodesByForm[f], name)
		}
	}
	for f, codes := range usage.CodesByForm {
		sort.Strings(codes)
		if len(codes) == 1 {
			code := codes[0]
			usage.UniqueTo[code] = append(usage.UniqueTo[code], f)
		}
	}
	for _, forms := range usage.UniqueTo {
		sort.Strings(forms)
	}
	return usage
}

// TotalEvents sums the counts of a rank distribution.
func TotalEvents(entries []RankEntry) uint64 {
	var total uint64
	for _, e := range entries {
		total += e.Count
	}
	return total
}

// EventCount pairs a delivered-event class with its record count.
type EventCount struct {
	// Event is the priority-encoded delivered exception.
	Event softfloat.Flags
	// Count is the number of records delivering it.
	Count uint64
}

// CountByEvent tallies records by delivered event, in MXCSR priority
// order (the breakdown fpanalyze and the summaries print).
func CountByEvent(recs []trace.Record) []EventCount {
	counts := map[softfloat.Flags]uint64{}
	for i := range recs {
		counts[recs[i].Event]++
	}
	order := []softfloat.Flags{
		softfloat.FlagInvalid, softfloat.FlagDenormal,
		softfloat.FlagDivideByZero, softfloat.FlagOverflow,
		softfloat.FlagUnderflow, softfloat.FlagInexact,
	}
	var out []EventCount
	for _, f := range order {
		if counts[f] > 0 {
			out = append(out, EventCount{Event: f, Count: counts[f]})
		}
	}
	return out
}

// ByThread splits records by originating thread id.
func ByThread(recs []trace.Record) map[uint32][]trace.Record {
	out := map[uint32][]trace.Record{}
	for i := range recs {
		out[recs[i].TID] = append(out[recs[i].TID], recs[i])
	}
	return out
}

// StaticCoverage compares a statically discovered site inventory with a
// dynamic trace: how much of the static prediction the run exercised,
// and whether any dynamic event escaped the static analysis. It is the
// quantitative form of the paper's Section 6 argument — static sites are
// few, dynamic events concentrate on fewer still.
type StaticCoverage struct {
	// StaticSites is the size of the static inventory.
	StaticSites int
	// DynamicSites is the number of distinct trap addresses in the trace.
	DynamicSites int
	// CoveredSites counts static sites the trace exercised.
	CoveredSites int
	// UnknownSites counts dynamic addresses absent from the inventory
	// (nonzero means the static analysis is unsound).
	UnknownSites int
	// SiteCoverage is CoveredSites / StaticSites.
	SiteCoverage float64
	// EventCoverage is the fraction of trace events that occurred at a
	// statically discovered site (1.0 when the analysis is sound).
	EventCoverage float64
}

// StaticCoverageOf computes coverage of a static site set (addresses,
// e.g. from internal/binscan's Scan.SiteAddrs) by a dynamic trace.
func StaticCoverageOf(recs []trace.Record, sites map[uint64]bool) StaticCoverage {
	cov := StaticCoverage{StaticSites: len(sites)}
	seen := make(map[uint64]bool)
	known := 0
	for i := range recs {
		addr := recs[i].Rip
		if sites[addr] {
			known++
		}
		if seen[addr] {
			continue
		}
		seen[addr] = true
		cov.DynamicSites++
		if sites[addr] {
			cov.CoveredSites++
		} else {
			cov.UnknownSites++
		}
	}
	if cov.StaticSites > 0 {
		cov.SiteCoverage = float64(cov.CoveredSites) / float64(cov.StaticSites)
	}
	if len(recs) > 0 {
		cov.EventCoverage = float64(known) / float64(len(recs))
	}
	return cov
}

// Span returns the first and last event timestamps (cycles).
func Span(recs []trace.Record) (first, last uint64) {
	if len(recs) == 0 {
		return 0, 0
	}
	first, last = recs[0].Time, recs[0].Time
	for i := range recs {
		if recs[i].Time < first {
			first = recs[i].Time
		}
		if recs[i].Time > last {
			last = recs[i].Time
		}
	}
	return first, last
}
