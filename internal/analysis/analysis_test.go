package analysis

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

func mkRecs(spec map[string]int) []trace.Record {
	var out []trace.Record
	for mnem, n := range spec {
		op, ok := isa.OpcodeByName(mnem)
		if !ok {
			panic("bad mnemonic " + mnem)
		}
		for i := 0; i < n; i++ {
			out = append(out, trace.Record{Opcode: uint16(op), Rip: uint64(0x400000 + int(op)*4)})
		}
	}
	return out
}

func TestRankByFormOrdersDescending(t *testing.T) {
	recs := mkRecs(map[string]int{"mulsd": 50, "addsd": 100, "divsd": 10})
	r := RankByForm(recs)
	if len(r) != 3 {
		t.Fatalf("len = %d", len(r))
	}
	if r[0].Key != "addsd" || r[0].Count != 100 {
		t.Errorf("top = %+v", r[0])
	}
	if r[2].Key != "divsd" {
		t.Errorf("bottom = %+v", r[2])
	}
	if TotalEvents(r) != 160 {
		t.Errorf("total = %d", TotalEvents(r))
	}
}

func TestCoverageCount(t *testing.T) {
	entries := []RankEntry{{"a", 990}, {"b", 5}, {"c", 5}}
	if got := CoverageCount(entries, 0.99); got != 1 {
		t.Errorf("coverage(0.99) = %d, want 1", got)
	}
	if got := CoverageCount(entries, 1.0); got != 3 {
		t.Errorf("coverage(1.0) = %d, want 3", got)
	}
	if got := CoverageCount(nil, 0.5); got != 0 {
		t.Errorf("coverage(empty) = %d", got)
	}
}

func TestRankByAddress(t *testing.T) {
	recs := []trace.Record{
		{Rip: 0x400010}, {Rip: 0x400010}, {Rip: 0x400020},
	}
	r := RankByAddress(recs)
	if len(r) != 2 || r[0].Key != "0x400010" || r[0].Count != 2 {
		t.Errorf("rank = %+v", r)
	}
}

func TestRateSeries(t *testing.T) {
	hz := 1000.0 // 1000 cycles per second for easy numbers
	recs := []trace.Record{
		{Time: 100}, {Time: 200}, {Time: 900}, // second 0: 3 events
		{Time: 1500}, // second 1: 1 event
	}
	pts := RateSeries(recs, 1.0, hz)
	if len(pts) != 2 {
		t.Fatalf("bins = %d", len(pts))
	}
	if pts[0].EventsPerSec != 3 || pts[1].EventsPerSec != 1 {
		t.Errorf("rates = %+v", pts)
	}
	if RateSeries(nil, 1, hz) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestCumulative(t *testing.T) {
	recs := []trace.Record{{Time: 300}, {Time: 100}, {Time: 200}}
	pts := Cumulative(recs, 100)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].TimeSec != 1 || pts[0].Count != 1 || pts[2].Count != 3 {
		t.Errorf("cumulative = %+v", pts)
	}
}

func TestFilterEvent(t *testing.T) {
	recs := []trace.Record{
		{Event: softfloat.FlagInexact},
		{Event: softfloat.FlagInvalid},
		{Event: softfloat.FlagInexact},
	}
	if got := len(FilterEvent(recs, softfloat.FlagInexact)); got != 2 {
		t.Errorf("filtered = %d", got)
	}
}

func TestFormsAcrossCodes(t *testing.T) {
	byCode := map[string][]trace.Record{
		"alpha": mkRecs(map[string]int{"addsd": 3, "mulsd": 1}),
		"beta":  mkRecs(map[string]int{"addsd": 2, "vdpps": 4}),
	}
	u := FormsAcrossCodes(byCode)
	if got := u.CodesByForm["addsd"]; len(got) != 2 {
		t.Errorf("addsd codes = %v", got)
	}
	if got := u.UniqueTo["beta"]; len(got) != 1 || got[0] != "vdpps" {
		t.Errorf("beta unique = %v", got)
	}
	if got := u.UniqueTo["alpha"]; len(got) != 1 || got[0] != "mulsd" {
		t.Errorf("alpha unique = %v", got)
	}
}

func TestCountByEvent(t *testing.T) {
	recs := []trace.Record{
		{Event: softfloat.FlagInexact},
		{Event: softfloat.FlagInexact},
		{Event: softfloat.FlagInvalid},
		{Event: softfloat.FlagDivideByZero},
	}
	counts := CountByEvent(recs)
	if len(counts) != 3 {
		t.Fatalf("classes = %d", len(counts))
	}
	// Priority order: Invalid first, Inexact last.
	if counts[0].Event != softfloat.FlagInvalid || counts[0].Count != 1 {
		t.Errorf("first = %+v", counts[0])
	}
	if counts[2].Event != softfloat.FlagInexact || counts[2].Count != 2 {
		t.Errorf("last = %+v", counts[2])
	}
	if CountByEvent(nil) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestByThreadAndSpan(t *testing.T) {
	recs := []trace.Record{
		{TID: 1, Time: 50}, {TID: 2, Time: 10}, {TID: 1, Time: 90},
	}
	by := ByThread(recs)
	if len(by) != 2 || len(by[1]) != 2 || len(by[2]) != 1 {
		t.Errorf("by thread = %v", by)
	}
	first, last := Span(recs)
	if first != 10 || last != 90 {
		t.Errorf("span = %d..%d", first, last)
	}
	if f, l := Span(nil); f != 0 || l != 0 {
		t.Error("empty span")
	}
}

func TestStaticCoverageOf(t *testing.T) {
	sites := map[uint64]bool{0x400000: true, 0x400004: true, 0x400008: true, 0x40000c: true}
	recs := []trace.Record{
		{Rip: 0x400000}, {Rip: 0x400000}, {Rip: 0x400004}, // two covered sites
		{Rip: 0x500000}, // unknown: escaped the static analysis
	}
	cov := StaticCoverageOf(recs, sites)
	if cov.StaticSites != 4 || cov.DynamicSites != 3 {
		t.Errorf("sites = static %d dynamic %d, want 4/3", cov.StaticSites, cov.DynamicSites)
	}
	if cov.CoveredSites != 2 || cov.UnknownSites != 1 {
		t.Errorf("covered = %d unknown = %d, want 2/1", cov.CoveredSites, cov.UnknownSites)
	}
	if cov.SiteCoverage != 0.5 {
		t.Errorf("SiteCoverage = %v, want 0.5", cov.SiteCoverage)
	}
	if cov.EventCoverage != 0.75 { // 3 of 4 events at known sites
		t.Errorf("EventCoverage = %v, want 0.75", cov.EventCoverage)
	}

	empty := StaticCoverageOf(nil, nil)
	if empty.SiteCoverage != 0 || empty.EventCoverage != 0 || empty.DynamicSites != 0 {
		t.Errorf("empty coverage = %+v", empty)
	}
}
