package analysis

// This file implements the FPRev-style accumulation-order analysis: the
// reconstruction of the exact accumulation tree a reduction used, from
// the monitor trace of a probe run (see internal/workload's probe
// generator).
//
// The probe technique is numerical, not instrumentation-based. For an
// n-input reduction, most inputs are 1.0 and a large mass M with its
// negative -M are placed at positions i and j, where M is chosen so that
// (n-2) + M == M in binary64. Any partial sum containing one mass
// absorbs every 1.0 added to it (an inexact add); when the two masses
// meet — at the lowest common ancestor (LCA) of leaves i and j in the
// accumulation tree — they cancel exactly, and only the 1.0s
// accumulated strictly outside the LCA's subtree survive to the final
// result. The final sum is therefore the integer
//
//	f(i,j) = n - |leaves(LCA(i,j))|
//
// and sweeping all pairs yields every LCA subtree size, which determines
// the rooted tree exactly (recovered here by recursive partition).
//
// The guest encodes each trial's result into the trace itself using two
// dedicated gadget sites, making the trace stream self-describing:
//
//   - report site: a MULSD that always raises Inexact, executed f(i,j)
//     times after trial (i,j);
//   - separator site: a DIVSD of 1.0/0.0 that always raises
//     DivideByZero, executed once to close each trial.
//
// Probe programs use MULSD and DIVSD forms nowhere else, so opcode plus
// raised-condition filtering recovers the full f-matrix from any
// unsampled individual-mode trace, regardless of which execution engine
// (fast/precise, pruned, superblock, local or cluster-routed) produced
// it.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// AccumTree is one node of a reconstructed (or modeled) accumulation
// tree. A node is either a leaf — one input of the reduction,
// identified by its 0-based position — or an internal node combining
// its children's partial sums.
type AccumTree struct {
	// Leaf is the input index; meaningful only when Kids is empty.
	Leaf int
	// Kids are the combined subtrees (two for a binary add; recovery
	// can in principle produce wider nodes from degenerate matrices).
	Kids []*AccumTree
}

// AccumLeaf returns a leaf node for input index i.
func AccumLeaf(i int) *AccumTree { return &AccumTree{Leaf: i} }

// AccumJoin returns an internal node combining the given subtrees.
func AccumJoin(kids ...*AccumTree) *AccumTree { return &AccumTree{Kids: kids} }

// IsLeaf reports whether the node is a leaf.
func (t *AccumTree) IsLeaf() bool { return len(t.Kids) == 0 }

// LeafCount returns the number of inputs under the node.
func (t *AccumTree) LeafCount() int {
	if t.IsLeaf() {
		return 1
	}
	n := 0
	for _, k := range t.Kids {
		n += k.LeafCount()
	}
	return n
}

// MinLeaf returns the smallest input index under the node.
func (t *AccumTree) MinLeaf() int {
	if t.IsLeaf() {
		return t.Leaf
	}
	m := t.Kids[0].MinLeaf()
	for _, k := range t.Kids[1:] {
		if v := k.MinLeaf(); v < m {
			m = v
		}
	}
	return m
}

// Canonical renders the tree in its canonical parenthesized form:
// leaves print their index, internal nodes print their children sorted
// by minimum leaf index. Because sibling leaf sets are disjoint, the
// sort order is total, so two trees have equal canonical forms exactly
// when they combine the same operand sets in the same association —
// commuted operand order (a+b vs b+a) canonicalizes away, reassociation
// does not. IEEE 754 addition is bit-commutative, so this is precisely
// the equivalence class that preserves guest-visible results.
func (t *AccumTree) Canonical() string {
	var sb strings.Builder
	t.canon(&sb)
	return sb.String()
}

func (t *AccumTree) canon(sb *strings.Builder) {
	if t.IsLeaf() {
		sb.WriteString(strconv.Itoa(t.Leaf))
		return
	}
	kids := make([]*AccumTree, len(t.Kids))
	copy(kids, t.Kids)
	sort.Slice(kids, func(i, j int) bool { return kids[i].MinLeaf() < kids[j].MinLeaf() })
	sb.WriteByte('(')
	for i, k := range kids {
		if i > 0 {
			sb.WriteByte(' ')
		}
		k.canon(sb)
	}
	sb.WriteByte(')')
}

// Fingerprint returns the canonical tree fingerprint: the input count
// plus a truncated SHA-256 of the canonical form. Two runs have equal
// fingerprints exactly when they used equivalent accumulation orders.
func (t *AccumTree) Fingerprint() string {
	sum := sha256.Sum256([]byte(t.Canonical()))
	return fmt.Sprintf("accum:n=%d:%s", t.LeafCount(), hex.EncodeToString(sum[:8]))
}

// LCASize returns the number of leaves under the lowest common ancestor
// of inputs i and j — the quantity a probe trial measures as n-f(i,j).
func (t *AccumTree) LCASize(i, j int) int {
	lca := t.lca(i, j)
	if lca == nil {
		return 0
	}
	return lca.LeafCount()
}

// lca returns the smallest subtree containing both i and j, or nil when
// either is absent.
func (t *AccumTree) lca(i, j int) *AccumTree {
	if !t.contains(i) || !t.contains(j) {
		return nil
	}
	for _, k := range t.Kids {
		if sub := k.lca(i, j); sub != nil {
			return sub
		}
	}
	return t
}

func (t *AccumTree) contains(i int) bool {
	if t.IsLeaf() {
		return t.Leaf == i
	}
	for _, k := range t.Kids {
		if k.contains(i) {
			return true
		}
	}
	return false
}

// RecoverAccumTree reconstructs the accumulation tree of an n-input
// reduction from its LCA subtree sizes: sub(i, j) must return
// |leaves(LCA(i,j))| for i < j, as measured by the probe sweep. The
// recovery is the recursive-partition form of FPRev's LCA analysis: at
// a node covering leaf set S, two leaves share a child subtree exactly
// when their LCA is smaller than |S|; the connected components of that
// relation are the children, recursively.
func RecoverAccumTree(n int, sub func(i, j int) int) (*AccumTree, error) {
	if n < 1 {
		return nil, fmt.Errorf("accumtree: no inputs")
	}
	leaves := make([]int, n)
	for i := range leaves {
		leaves[i] = i
	}
	return recoverSet(leaves, sub)
}

func recoverSet(set []int, sub func(i, j int) int) (*AccumTree, error) {
	if len(set) == 1 {
		return AccumLeaf(set[0]), nil
	}
	// Union-find over the set: connect i~j when their LCA is strictly
	// below this node.
	parent := make([]int, len(set))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for a := 0; a < len(set); a++ {
		for b := a + 1; b < len(set); b++ {
			i, j := set[a], set[b]
			if i > j {
				i, j = j, i
			}
			s := sub(i, j)
			if s < 2 || s > len(set) {
				return nil, fmt.Errorf("accumtree: inconsistent matrix: |LCA(%d,%d)| = %d with %d leaves in scope",
					i, j, s, len(set))
			}
			if s < len(set) {
				parent[find(a)] = find(b)
			}
		}
	}
	groups := map[int][]int{}
	var roots []int
	for a := range set {
		r := find(a)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], set[a])
	}
	if len(roots) < 2 {
		return nil, fmt.Errorf("accumtree: inconsistent matrix: %d leaves form no partition", len(set))
	}
	// Deterministic child order (canonicalization re-sorts anyway).
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	kids := make([]*AccumTree, 0, len(roots))
	for _, r := range roots {
		kid, err := recoverSet(groups[r], sub)
		if err != nil {
			return nil, err
		}
		kids = append(kids, kid)
	}
	return AccumJoin(kids...), nil
}

// ProbePairs enumerates the probe trial order: all unordered input
// pairs (i, j), i < j, lexicographically. Probe generators and the
// trace analysis share this canonical order, which is what makes a
// probe trace self-describing.
func ProbePairs(n int) [][2]int {
	pairs := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// probeSizeFromTrials inverts T = n(n-1)/2.
func probeSizeFromTrials(trials int) (int, error) {
	n := 2
	for ; n*(n-1)/2 < trials; n++ {
	}
	if n*(n-1)/2 != trials {
		return 0, fmt.Errorf("accumtree: %d trials is not a pair sweep (want n(n-1)/2)", trials)
	}
	return n, nil
}

// isProbeReport matches the report-gadget records of a probe trace.
func isProbeReport(r *trace.Record) bool {
	return isa.Opcode(r.Opcode) == isa.OpMULSD && r.Raised&softfloat.FlagInexact != 0
}

// isProbeSeparator matches the trial-separator records of a probe trace.
func isProbeSeparator(r *trace.Record) bool {
	return isa.Opcode(r.Opcode) == isa.OpDIVSD && r.Raised&softfloat.FlagDivideByZero != 0
}

// ProbeTrialCounts extracts the per-trial report counts — the f-values
// — from an unsampled individual-mode probe trace. Gadget records must
// all come from one thread (the probe's measurement thread); other
// threads' records and the kernel's own absorption events are ignored.
func ProbeTrialCounts(recs []trace.Record) ([]int, error) {
	type gadget struct {
		seq uint64
		sep bool
	}
	var gs []gadget
	var tid uint32
	seen := false
	for i := range recs {
		r := &recs[i]
		rep, sep := isProbeReport(r), isProbeSeparator(r)
		if !rep && !sep {
			continue
		}
		if !seen {
			tid, seen = r.TID, true
		} else if r.TID != tid {
			return nil, fmt.Errorf("accumtree: gadget records from multiple threads (tid %d and %d)", tid, r.TID)
		}
		gs = append(gs, gadget{seq: r.Seq, sep: sep})
	}
	if !seen {
		return nil, fmt.Errorf("accumtree: no probe gadget records in trace (not a probe run, or a sampled one)")
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].seq < gs[j].seq })
	var counts []int
	cur := 0
	for _, g := range gs {
		if g.sep {
			counts = append(counts, cur)
			cur = 0
			continue
		}
		cur++
	}
	if cur != 0 {
		return nil, fmt.Errorf("accumtree: %d report records after the final separator (truncated trace?)", cur)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("accumtree: no completed trials in trace")
	}
	return counts, nil
}

// RecoverProbeTree reconstructs the accumulation tree from a probe
// run's monitor trace: per-trial f-values from the gadget records, LCA
// subtree sizes s(i,j) = n - f(i,j), then recursive-partition recovery.
func RecoverProbeTree(recs []trace.Record) (*AccumTree, error) {
	counts, err := ProbeTrialCounts(recs)
	if err != nil {
		return nil, err
	}
	n, err := probeSizeFromTrials(len(counts))
	if err != nil {
		return nil, err
	}
	sizes := make([][]int, n)
	for i := range sizes {
		sizes[i] = make([]int, n)
	}
	for t, pr := range ProbePairs(n) {
		f := counts[t]
		if f > n-2 {
			return nil, fmt.Errorf("accumtree: trial (%d,%d) reports %d survivors of %d ones", pr[0], pr[1], f, n-2)
		}
		sizes[pr[0]][pr[1]] = n - f
	}
	return RecoverAccumTree(n, func(i, j int) int { return sizes[i][j] })
}
