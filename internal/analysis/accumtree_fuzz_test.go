package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// buildFuzzTree deterministically grows a binary accumulation tree over
// n leaves, consuming split decisions from the fuzz input: at each
// subrange the next byte picks the split point. Every consumed input
// yields a well-formed tree, so the fuzzer explores tree shapes, not
// parser corners.
func buildFuzzTree(data []byte, lo, hi int, pos *int) *analysis.AccumTree {
	if hi-lo == 1 {
		return analysis.AccumLeaf(lo)
	}
	b := byte(0x5a)
	if *pos < len(data) {
		b = data[*pos]
		*pos++
	}
	mid := lo + 1 + int(b)%(hi-lo-1+1)
	if mid >= hi {
		mid = hi - 1
	}
	return analysis.AccumJoin(buildFuzzTree(data, lo, mid, pos), buildFuzzTree(data, mid, hi, pos))
}

// FuzzAccumTreeRecover: any well-formed probe trace — synthesized from
// a random binary tree's f-values — must round-trip through trace
// extraction and LCA recovery back to the generating tree, bit-for-bit
// on the canonical form.
func FuzzAccumTreeRecover(f *testing.F) {
	f.Add(3, []byte{})
	f.Add(8, []byte{0, 1, 2, 3, 4, 5, 6})
	f.Add(16, []byte{0x80, 0x40, 0x20, 0x10, 0x08})
	f.Add(64, []byte{0xff, 0x01, 0x7f, 0x33, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, n int, data []byte) {
		if n < 2 || n > 64 {
			t.Skip()
		}
		pos := 0
		tree := buildFuzzTree(data, 0, n, &pos)
		noise := len(data) > 0 && data[0]&1 == 1
		recs := synthTrace(fvalsOf(tree), noise)
		got, err := analysis.RecoverProbeTree(recs)
		if err != nil {
			t.Fatalf("n=%d: recovery failed on a well-formed trace: %v", n, err)
		}
		if got.Canonical() != tree.Canonical() {
			t.Fatalf("n=%d: recovered %s, generated %s", n, got.Canonical(), tree.Canonical())
		}
		if got.Fingerprint() != tree.Fingerprint() {
			t.Fatalf("n=%d: fingerprint mismatch", n)
		}
	})
}
