package fpspy_test

import (
	"math"
	"testing"

	fpspy "repro"
	"repro/internal/isa"
)

// buildTimerUserProgram hooks SIGVTALRM (the virtual sampler signal) and
// then produces rounding events.
func buildTimerUserProgram() *fpspy.Program {
	b := fpspy.NewProgram("timer-user")
	handler := b.Label("handler")
	b.Movi(isa.R1, 26) // SIGVTALRM
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	b.Bind(handler)
	b.CallC("rt_sigreturn")
	return b.Build()
}

func TestTimerSignalConflictOnlyWhenSampling(t *testing.T) {
	// With temporal sampling, the app touching SIGVTALRM makes FPSpy
	// step aside...
	res, err := fpspy.Run(buildTimerUserProgram(), fpspy.Options{
		Config: fpspy.Config{
			Mode: fpspy.ModeIndividual, SampleOnUS: 5, SampleOffUS: 100,
			Poisson: true, VirtualTimer: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("sampling: step-asides = %d, want 1", res.Store.StepAsides)
	}
	// ...but without sampling the signal is not FPSpy's, so it keeps
	// spying.
	res, err = fpspy.Run(buildTimerUserProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 0 {
		t.Errorf("no sampling: step-asides = %d, want 0", res.Store.StepAsides)
	}
	if len(res.MustRecords()) != 1 {
		t.Errorf("records = %d, want 1", len(res.MustRecords()))
	}
}

func TestMaxCountIsPerThread(t *testing.T) {
	// Two threads each produce 20 events; MaxCount 5 caps each thread
	// independently at 5.
	b := fpspy.NewProgram("maxcount-threads")
	worker := b.Label("worker")
	b.Lea(isa.R1, worker)
	b.Movi(isa.R2, 0)
	b.CallC("pthread_create")
	b.Mov(isa.R10, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	loop1 := b.Label("loop1")
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 20)
	b.Bind(loop1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, loop1)
	b.Mov(isa.R1, isa.R10)
	b.CallC("pthread_join")
	b.Hlt()
	b.Bind(worker)
	b.Movi(isa.R1, int64(math.Float64bits(2)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(7)))
	b.Movqx(isa.X1, isa.R1)
	loop2 := b.Label("loop2")
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, 20)
	b.Bind(loop2)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, loop2)
	b.CallC("pthread_exit")

	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, MaxCount: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	threads := res.Store.Threads()
	if len(threads) != 2 {
		t.Fatalf("traced threads = %d", len(threads))
	}
	for _, key := range threads {
		recs, err := res.Store.Records(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 5 {
			t.Errorf("%v: records = %d, want 5", key, len(recs))
		}
	}
}

func TestAggregateModeSurvivesFork(t *testing.T) {
	b := fpspy.NewProgram("agg-fork")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.CallC("fork")
	child := b.Label("child")
	b.Beq(isa.R1, isa.R0, child)
	// Parent: divide by zero.
	b.Movqx(isa.X1, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	b.Bind(child)
	// Child: 0/0 invalid.
	b.Movqx(isa.X1, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X1, isa.X1)
	b.Hlt()
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate},
	})
	if err != nil {
		t.Fatal(err)
	}
	aggs := res.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d, want one per process", len(aggs))
	}
	var sawZE, sawIE bool
	for _, a := range aggs {
		if a.Flags&fpspy.FlagDivideByZero != 0 {
			sawZE = true
		}
		if a.Flags&fpspy.FlagInvalid != 0 {
			sawIE = true
		}
	}
	if !sawZE || !sawIE {
		t.Errorf("per-process events lost: ZE=%v IE=%v (%v)", sawZE, sawIE, aggs)
	}
}

func TestExceptListInvalidOnly(t *testing.T) {
	res, err := fpspy.Run(buildEventProgram(50), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			ExceptList: fpspy.FlagInvalid,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.MustRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want just the invalid", len(recs))
	}
	if recs[0].Event != fpspy.FlagInvalid {
		t.Errorf("event = %v", recs[0].Event)
	}
	// Only the one fault was ever taken: ZE and the 50 PEs stayed
	// masked, so overhead was confined to the selected event.
	if res.Store.Faults != 1 {
		t.Errorf("faults = %d, want 1", res.Store.Faults)
	}
}

func TestAppHandlerWorksAfterStepAside(t *testing.T) {
	// After FPSpy steps aside, the application's own SIGFPE handler (the
	// reason for the step-aside) must receive signals normally: the app
	// unmasks ZE, divides by zero, and its handler must run.
	b := fpspy.NewProgram("post-stepaside")
	handler := b.Label("handler")
	b.Movi(isa.R1, 8) // SIGFPE — triggers FPSpy step-aside, then installs
	b.Lea(isa.R2, handler)
	b.CallC("signal")
	b.Movi(isa.R1, int64(fpspy.FlagDivideByZero))
	b.CallC("feenableexcept")
	b.Movi(isa.R1, int64(fpspy.FlagDivideByZero))
	b.CallC("feraiseexcept") // synchronous: handler runs, no refault
	b.Movi(isa.R9, 55)
	b.Hlt()
	b.Bind(handler)
	b.Movi(isa.R3, 700)
	b.Movi(isa.R4, 1)
	b.St(isa.R3, 0, isa.R4)
	b.CallC("rt_sigreturn")
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("step-asides = %d", res.Store.StepAsides)
	}
	if res.Proc.Mem[700] != 1 {
		t.Error("app handler did not run after step-aside")
	}
	if res.Proc.Tasks[0].M.CPU.R[isa.R9] != 55 {
		t.Error("app did not resume after its handler")
	}
	if res.ExitCode != 0 {
		t.Errorf("exit %d", res.ExitCode)
	}
}

func TestRealTimerSampling(t *testing.T) {
	// Temporal sampling on the real-time base (SIGALRM instead of
	// SIGVTALRM): cycles including kernel time drive the sampler.
	const n = 100000
	res, err := fpspy.Run(buildEventProgram(n), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			SampleOnUS: 1, SampleOffUS: 20,
			Poisson:      true,
			VirtualTimer: false, // FPE_TIMER=real
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := len(res.MustRecords())
	if got == 0 || got >= n {
		t.Errorf("real-time sampled records = %d of %d", got, n)
	}
	// Real-time accounting makes on-periods cover fewer instructions
	// (event handling burns the window), so capture sits below the
	// nominal instruction-time fraction.
	frac := float64(got) / float64(n)
	if frac > 0.3 {
		t.Errorf("real-time sampling captured %.2f of events", frac)
	}
}

func TestSubsampleComposesWithMaxCount(t *testing.T) {
	// FPE_SAMPLE=10 with FPE_MAXCOUNT=3: every 10th event recorded,
	// stop after 3 records (the paper's "after 10 million faulting
	// instructions are observed, FPSpy will disable itself").
	res, err := fpspy.Run(buildEventProgram(500), fpspy.Options{
		Config: fpspy.Config{
			Mode:        fpspy.ModeIndividual,
			SampleEvery: 10,
			MaxCount:    3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.MustRecords()); got != 3 {
		t.Errorf("records = %d, want 3", got)
	}
	// Faults stop shortly after the cap: 30 faults to fill the cap,
	// plus the one that hits it.
	if res.Store.Faults > 35 {
		t.Errorf("faults = %d, want ~30", res.Store.Faults)
	}
}

// TestBreakpointProtocolMatchesTF runs the same program under both
// single-event mechanisms — TF single-stepping and the Section 3.8
// invalid-opcode breakpoint — and requires identical traces.
func TestBreakpointProtocolMatchesTF(t *testing.T) {
	run := func(brk bool) []fpspy.Record {
		res, err := fpspy.Run(buildEventProgram(200), fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeIndividual, Breakpoints: brk},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("exit %d", res.ExitCode)
		}
		return res.MustRecords()
	}
	tf := run(false)
	bp := run(true)
	if len(tf) != len(bp) {
		t.Fatalf("record counts differ: TF %d vs breakpoint %d", len(tf), len(bp))
	}
	for i := range tf {
		if tf[i].Rip != bp[i].Rip || tf[i].Event != bp[i].Event || tf[i].Raised != bp[i].Raised {
			t.Fatalf("record %d differs: TF %+v vs BP %+v", i, tf[i], bp[i])
		}
	}
}

// TestBreakpointProtocolWithThreads exercises per-thread breakpoint state.
func TestBreakpointProtocolWithThreads(t *testing.T) {
	res, err := fpspy.Run(buildThreadedProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Breakpoints: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Store.Threads()); got != 2 {
		t.Fatalf("traced threads = %d", got)
	}
	if res.EventSet()&(fpspy.FlagDivideByZero|fpspy.FlagInexact) !=
		fpspy.FlagDivideByZero|fpspy.FlagInexact {
		t.Errorf("events = %v", res.EventSet())
	}
}

// TestBreakpointStepAsideClearsStubs: stepping aside under the
// breakpoint protocol must leave no stubbed instructions behind.
func TestBreakpointStepAsideClearsStubs(t *testing.T) {
	res, err := fpspy.Run(buildFESetEnvProgram(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Breakpoints: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 1 {
		t.Errorf("step-asides = %d", res.Store.StepAsides)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit %d: a stale breakpoint killed the app", res.ExitCode)
	}
	for _, task := range res.Proc.Tasks {
		if len(task.M.Breakpoints) != 0 {
			t.Errorf("stale breakpoints: %v", task.M.Breakpoints)
		}
	}
}
