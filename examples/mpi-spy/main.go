// MPI spy: FPSpy attaching to a distributed-memory job exactly as the
// paper describes — "this also allows FPSpy to be used in models where
// the executable is launched in an indirect manner, such as MPI's
// mpirun": the launcher's environment (LD_PRELOAD + FPE_*) is inherited
// by every rank, and each rank produces its own trace.
package main

import (
	"fmt"
	"math"

	fpspy "repro"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mpi"
)

// buildHaloSolver: each rank relaxes a local domain and exchanges halo
// values with its ring neighbors every step. Rank 2 has a degenerate
// cell that divides by zero once.
func buildHaloSolver() *fpspy.Program {
	b := fpspy.NewProgram("halo-solver")
	b.CallC("MPI_Comm_rank")
	b.Mov(isa.R10, isa.R1)
	b.CallC("MPI_Comm_size")
	b.Mov(isa.R11, isa.R1)

	// Local state: u = 1 + rank/7.
	b.Cvt(isa.OpCVTSI2SD, isa.X0, isa.R10)
	b.Movi(isa.R6, int64(math.Float64bits(7)))
	b.Movqx(isa.X1, isa.R6)
	b.FP2(isa.OpDIVSD, isa.X0, isa.X0, isa.X1)
	b.Movi(isa.R6, int64(math.Float64bits(1)))
	b.Movqx(isa.X1, isa.R6)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)

	// Rank 2's degenerate cell.
	skip := b.Label("skipdeg")
	b.Movi(isa.R6, 2)
	b.Bne(isa.R10, isa.R6, skip)
	b.Movqx(isa.X5, isa.R0)
	b.FP2(isa.OpDIVSD, isa.X6, isa.X0, isa.X5) // u/0
	b.Bind(skip)

	// 5 halo-exchange relaxation steps.
	b.Movi(isa.R13, 0)
	b.Movi(isa.R12, 5)
	step := b.Label("step")
	b.Bind(step)
	// send u to right neighbor
	b.Addi(isa.R1, isa.R10, 1)
	b.Remq(isa.R1, isa.R1, isa.R11)
	b.Movxq(isa.R2, isa.X0)
	b.CallC("MPI_Send")
	// recv from left neighbor
	b.Add(isa.R9, isa.R10, isa.R11)
	b.Addi(isa.R9, isa.R9, -1)
	b.Remq(isa.R9, isa.R9, isa.R11)
	recv := b.Label("recv")
	b.Bind(recv)
	b.Mov(isa.R1, isa.R9)
	b.CallC("MPI_Recv_poll")
	b.Beq(isa.R1, isa.R0, recv)
	b.Movqx(isa.X2, isa.R2)
	// u = 0.5*(u + halo)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X2)
	b.Movi(isa.R6, int64(math.Float64bits(0.5)))
	b.Movqx(isa.X3, isa.R6)
	b.FP2(isa.OpMULSD, isa.X0, isa.X0, isa.X3)
	b.Addi(isa.R13, isa.R13, 1)
	b.Blt(isa.R13, isa.R12, step)
	b.Hlt()
	return b.Build()
}

func main() {
	const ranks = 4
	k := kernel.New()
	store := core.NewStore()
	k.RegisterPreload(core.PreloadName, core.Factory(store))

	// The production launch path: mpirun inherits FPSpy's environment.
	cfg := core.Config{
		Mode:       core.ModeIndividual,
		ExceptList: core.AllEvents &^ fpspy.FlagInexact,
	}
	_, procs, err := mpi.Launch(k, buildHaloSolver(), ranks, 4<<20, cfg.EnvVars())
	if err != nil {
		panic(err)
	}
	k.Run(50_000_000)

	fmt.Printf("mpirun -np %d halo-solver (FPSpy attached through the environment)\n\n", ranks)
	for i, p := range procs {
		u := math.Float64frombits(p.Tasks[0].M.CPU.X[isa.X0][0])
		fmt.Printf("rank %d (pid %d): exit %d, converged u = %.6f\n", i, p.PID, p.ExitCode, u)
	}
	fmt.Println("\nper-rank traces:")
	for _, key := range store.Threads() {
		recs, err := store.Records(key)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %v: %d problematic events", key, len(recs))
		for i := range recs {
			fmt.Printf(" [%s %v at %#x]", fpspy.Mnemonic(&recs[i]), recs[i].Event, recs[i].Rip)
		}
		fmt.Println()
	}
}
