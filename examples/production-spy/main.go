// Production spy: the paper's primary use-case (Figure 1a). A job
// scheduler launches a stream of user jobs; the launch path wraps each
// job with FPSpy in aggregate mode — virtually zero overhead, the user
// sees nothing — and the collected per-thread condition-code records are
// scanned for red flags.
package main

import (
	"fmt"

	fpspy "repro"
	"repro/internal/workload"
)

func main() {
	// Today's job queue, as submitted by users.
	queue := []string{"lammps", "laghos", "enzo", "moose", "wrf", "nas-cg"}

	fmt.Println("job launch log (FPSpy attached via LD_PRELOAD, aggregate mode):")
	for _, job := range queue {
		w, err := workload.ByName(job)
		if err != nil {
			panic(err)
		}
		res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeAggregate},
		})
		if err != nil {
			panic(err)
		}
		// The user's job ran unchanged; the analyst gets trace data.
		for _, agg := range res.Aggregates() {
			fmt.Printf("  job %-8s %v\n", job, agg)
		}
		// Particularly problematic behavior is red-flagged.
		problems := res.EventSet() & (fpspy.FlagInvalid | fpspy.FlagDivideByZero | fpspy.FlagOverflow)
		if problems != 0 {
			fmt.Printf("  *** RED FLAG: %s raised %v — notify the application team\n", job, problems)
		}
	}
}
