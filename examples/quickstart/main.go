// Quickstart: build a tiny guest program with the public API, run it
// under FPSpy in individual mode, and print every captured floating
// point event.
package main

import (
	"fmt"
	"math"

	fpspy "repro"
	"repro/internal/isa"
)

func main() {
	// A five-line numerical program: compute 1/3 (rounds), divide by
	// zero, and take sqrt(-1) (invalid).
	b := fpspy.NewProgram("quickstart")
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1) // 1/3: Inexact
	b.Movqx(isa.X3, isa.R0)                    // +0
	b.FP2(isa.OpDIVSD, isa.X4, isa.X0, isa.X3) // 1/0: DivideByZero
	b.Movi(isa.R1, int64(math.Float64bits(-1)))
	b.Movqx(isa.X5, isa.R1)
	b.FP1(isa.OpSQRTSD, isa.X6, isa.X5) // sqrt(-1): Invalid
	b.Hlt()

	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("FPSpy captured:")
	for _, rec := range res.MustRecords() {
		fmt.Printf("  %-8s at %#x raised %v (delivered %v)\n",
			fpspy.Mnemonic(&rec), rec.Rip, rec.Raised, rec.Event)
	}
	fmt.Printf("event set: %v\n", res.EventSet())
}
