// Lab study: the paper's "spying in the lab" use-case (Figure 1c). The
// analyst re-runs a problematic job under aggressive individual-mode
// tracing with full detail, then drills into the trace: which
// instructions cause the events, their temporal pattern, and the
// locality statistics that motivate a mitigation system.
package main

import (
	"fmt"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/study"
	"repro/internal/workload"
)

func main() {
	// The production spy red-flagged ENZO for NaNs; reproduce in the lab
	// with full instruction-level capture (no sampling, all events but
	// Inexact — the Figure 11 configuration).
	w, err := workload.ByName("enzo")
	if err != nil {
		panic(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			Aggressive: true,
			ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
		},
	})
	if err != nil {
		panic(err)
	}
	recs := res.MustRecords()
	fmt.Printf("captured %d non-rounding events from enzo\n\n", len(recs))

	// Which instructions?
	fmt.Println("faulting sites:")
	for _, e := range analysis.RankByAddress(recs) {
		fmt.Printf("  %-12s %6d events\n", e.Key, e.Count)
	}

	// What kinds?
	fmt.Println("\nforms:")
	for _, e := range analysis.RankByForm(recs) {
		fmt.Printf("  %-12s %6d events\n", e.Key, e.Count)
	}

	// When? (the paper's Figure 12: NaN rate rises with AMR refinement)
	invalids := analysis.FilterEvent(recs, fpspy.FlagInvalid)
	fmt.Println("\nInvalid (NaN) rate over time:")
	for _, p := range analysis.RateSeries(invalids, 100e-6, study.ClockHz) {
		bar := ""
		for i := 0; i < int(p.EventsPerSec/20000); i++ {
			bar += "#"
		}
		fmt.Printf("  %7.2fms %9.0f/s %s\n", p.TimeSec*1e3, p.EventsPerSec, bar)
	}
}
