// Rounding mitigation: the paper's Section 6 prospect, made concrete.
// First, FPSpy traces establish the locality of rounding instructions
// (few sites, few forms); then the trap-and-emulate prototype executes a
// guest kernel against an arbitrary-precision software FPU (math/big in
// place of MPFR) and reports how much accuracy higher precision
// recovers.
package main

import (
	"fmt"
	"math"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/workload"
)

// buildNaiveSum sums 0.1 a hundred thousand times — the classic
// error-accumulation kernel.
func buildNaiveSum(n int64) *fpspy.Program {
	b := fpspy.NewProgram("naive-sum")
	b.Movi(isa.R6, int64(math.Float64bits(0.1)))
	b.Movqx(isa.X1, isa.R6)
	b.Movqx(isa.X0, isa.R0)
	b.Movi(isa.R8, 0)
	b.Movi(isa.R9, n)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpADDSD, isa.X0, isa.X0, isa.X1)
	b.Addi(isa.R8, isa.R8, 1)
	b.Blt(isa.R8, isa.R9, top)
	b.Movi(isa.R10, 128)
	b.Fst(isa.R10, 0, isa.X0)
	b.Hlt()
	return b.Build()
}

func main() {
	// Step 1 — FPSpy locality analysis on a real application's rounding.
	w, err := workload.ByName("moose")
	if err != nil {
		panic(err)
	}
	res, err := fpspy.Run(w.Build(workload.SizeSmall), fpspy.Options{
		Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			SampleOnUS: 5, SampleOffUS: 100, Poisson: true, VirtualTimer: true,
		},
	})
	if err != nil {
		panic(err)
	}
	recs := res.MustRecords()
	byAddr := analysis.RankByAddress(recs)
	byForm := analysis.RankByForm(recs)
	rep := mitigate.Feasibility(byAddr, byForm, 50_000, 150, 4_000)
	fmt.Printf("moose rounding locality: %d sites (%d cover 99%%), %d forms (%d cover 99%%)\n",
		rep.Sites, rep.Sites99, rep.Forms, rep.Forms99)
	fmt.Printf("mitigation cost: %.0f cycles/event patched vs %.0f trapped — patch wins: %v\n\n",
		rep.PatchCyclesPerEvent, rep.TrapCyclesPerEvent, rep.PatchWins)

	// Step 2 — trap-and-emulate execution at increasing precision.
	const n = 100_000
	exact := float64(n) * 0.1
	for _, prec := range []uint{53, 113, 256} {
		m := machine.New(buildNaiveSum(n), 4096)
		sh := mitigate.NewShadowExecutor(m, prec)
		if ev := sh.Run(10_000_000); ev == nil {
			panic("did not halt")
		}
		hw := math.Float64frombits(m.CPU.X[isa.X0][0])
		fmt.Printf("precision %3d bits: hardware err %.3e, hw-vs-shadow divergence %d ulps (%d ops emulated)\n",
			prec, math.Abs(hw-exact)/exact, sh.MaxUlps(), sh.Emulated())
	}
	fmt.Println("\nhigher shadow precision exposes exactly the rounding error the")
	fmt.Println("hardware accumulates; at 53 bits the shadow reproduces it bit-for-bit.")

	// Step 3 — the full system: fpmitigate.so in LD_PRELOAD underneath
	// an unmodified binary. Rounding instructions trap, get emulated at
	// 256-bit precision, and the improved results are written back
	// through the signal context.
	fmt.Println()
	plain, err := fpspy.Run(buildNaiveSum(n), fpspy.Options{NoSpy: true})
	if err != nil {
		panic(err)
	}
	mitigated, stats, err := fpspy.RunMitigated(buildNaiveSum(n), 256, fpspy.Options{})
	if err != nil {
		panic(err)
	}
	read := func(r *fpspy.Result) float64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(r.Proc.Mem[128+i]) << (8 * i)
		}
		return math.Float64frombits(v)
	}
	fmt.Printf("trap-and-emulate under LD_PRELOAD (naive %d-term sum of 0.1):\n", n)
	fmt.Printf("  plain hardware result: %.15f (err %.3e)\n", read(plain), math.Abs(read(plain)-exact))
	fmt.Printf("  mitigated result:      %.15f (err %.3e)\n", read(mitigated), math.Abs(read(mitigated)-exact))
	fmt.Printf("  %d instructions emulated, %d results improved, %d fallbacks\n",
		stats.Emulated, stats.Improved, stats.Fallbacks)
}
