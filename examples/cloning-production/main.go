// Cloning in production: the paper's Figure 1(b) use-case. At job
// launch the scheduler captures a *submission clone* — program plus
// parameters — and runs the user's job untouched (no overhead at all).
// The serialized clones go to the analyst, who replays them offline
// under aggressive instruction-level FPSpy tracing.
package main

import (
	"fmt"

	fpspy "repro"
	"repro/internal/jobs"
	"repro/internal/workload"
)

func main() {
	queue := []string{"enzo", "ext/lu_cb", "blackscholes"}

	// --- Production side: capture clones, run jobs untouched. ---
	var archive [][]byte
	fmt.Println("production launch log:")
	for _, name := range queue {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		job := jobs.Capture(name, w.Build(workload.SizeSmall), nil, 4<<20)
		blob, err := job.Encode()
		if err != nil {
			panic(err)
		}
		archive = append(archive, blob)
		res, err := job.RunProduction()
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-14s exit %d, %8d instructions, clone archived (%d bytes)\n",
			name, res.ExitCode, res.Steps, len(blob))
	}

	// --- Analyst side, later: replay clones with aggressive tracing. ---
	fmt.Println("\noffline analysis of archived clones:")
	for _, blob := range archive {
		clone, err := jobs.Decode(blob)
		if err != nil {
			panic(err)
		}
		res, err := clone.Replay(fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			Aggressive: true,
			ExceptList: fpspy.AllEvents &^ fpspy.FlagInexact,
		})
		if err != nil {
			panic(err)
		}
		recs := res.MustRecords()
		fmt.Printf("  %-14s %d problematic events", clone.Name, len(recs))
		if len(recs) > 0 {
			fmt.Printf(" (first: %s at %#x raised %v)",
				fpspy.Mnemonic(&recs[0]), recs[0].Rip, recs[0].Raised)
		}
		fmt.Println()
	}
}
