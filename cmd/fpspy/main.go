// Command fpspy runs a guest workload under the FPSpy reproduction,
// configured — exactly as the paper's tool is — through environment
// variables:
//
//	FPE_MODE=aggregate|individual  operating mode (default aggregate)
//	FPE_AGGRESSIVE=yes             don't step aside on incidental signal use
//	FPE_DISABLE=yes                load but do nothing
//	FPE_EXCEPT_LIST=a,b,...        events to capture (invalid, denorm,
//	                               divide, overflow, underflow, inexact)
//	FPE_MAXCOUNT=N                 per-thread record cap
//	FPE_SAMPLE=N | on:off          1-in-N or temporal sampling (us)
//	FPE_POISSON=yes                exponential on/off periods
//	FPE_TIMER=virtual|real         sampler time base
//	FPE_STORM=N:C                  trap-storm watchdog (N faults / C cycles)
//
// Usage:
//
//	FPE_MODE=individual fpspy [-size small|large] [-out DIR] [-nospy] <workload>
//	FPE_MODE=aggregate  fpspy -np 4 <workload>     # mpirun-style launch
//	fpspy -list
//
// With -np, the workload is launched as N ranks through the simulated
// mpirun; FPSpy attaches to every rank via the inherited environment and
// writes a trace per rank. Individual-mode traces are written to DIR as
// <pid>.<tid>.fpemon files (decode them with fptrace; analyze with
// fpanalyze).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	fpspy "repro"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available workloads")
	size := flag.String("size", "large", "problem size: small or large")
	outDir := flag.String("out", "", "directory for binary trace files")
	noSpy := flag.Bool("nospy", false, "run without FPSpy attached (baseline)")
	np := flag.Int("np", 1, "number of MPI ranks to launch")
	validate := flag.Bool("validate", false, "run the paper's Section 5 validation matrix")
	metrics := flag.Bool("metrics", false, "collect observability metrics and print a summary after the run")
	traceOut := flag.String("traceout", "", "write a Chrome trace_event file of the run (implies -metrics)")
	pprofAddr := flag.String("pprof", "", "serve pprof and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	var om *obs.Metrics
	if *metrics || *traceOut != "" || *pprofAddr != "" {
		om = obs.New(obs.Options{})
	}
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, om)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fpspy: pprof and /metrics on http://%s\n", srv.Addr)
	}

	if *validate {
		runValidation()
		return
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-20s %-8s %s\n", w.Meta.Name, w.Meta.Suite, w.Meta.Problem)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fpspy [-list] [-size small|large] [-out DIR] [-nospy] <workload>")
		os.Exit(2)
	}
	var sz workload.Size
	switch *size {
	case "small":
		sz = workload.SizeSmall
	case "large":
		sz = workload.SizeLarge
	default:
		fmt.Fprintf(os.Stderr, "fpspy: unknown size %q\n", *size)
		os.Exit(2)
	}
	w, err := workload.ByName(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpspy:", err)
		os.Exit(1)
	}

	// The configuration interface is the process environment, as in the
	// paper's Figure 2.
	env := map[string]string{}
	for _, key := range []string{"FPE_MODE", "FPE_AGGRESSIVE", "FPE_DISABLE",
		"FPE_EXCEPT_LIST", "FPE_MAXCOUNT", "FPE_SAMPLE", "FPE_POISSON", "FPE_TIMER",
		"FPE_STORM"} {
		if v, ok := os.LookupEnv(key); ok {
			env[key] = v
		}
	}
	cfg, err := core.ParseConfig(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpspy:", err)
		os.Exit(1)
	}

	if *np > 1 {
		runMPI(w, sz, cfg, *np, *noSpy, *outDir)
		return
	}

	res, err := fpspy.Run(w.Build(sz), fpspy.Options{Config: cfg, NoSpy: *noSpy, Obs: om})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpspy:", err)
		os.Exit(1)
	}

	wall := float64(res.WallCycles) / study.ClockHz
	user := float64(res.UserCycles) / study.ClockHz
	sys := float64(res.SysCycles) / study.ClockHz
	fmt.Printf("%s: exit %d, %d instructions, wall %.6fs user %.6fs sys %.6fs\n",
		w.Meta.Name, res.ExitCode, res.Steps, wall, user, sys)

	for _, a := range res.Aggregates() {
		fmt.Println(" ", a)
	}
	if res.Store.Recorded > 0 {
		fmt.Printf("  %d faults handled, %d records captured\n", res.Store.Faults, res.Store.Recorded)
	}
	if res.Store.StepAsides > 0 {
		fmt.Printf("  FPSpy got out of the way in %d process(es)\n", res.Store.StepAsides)
	}
	if res.TraceErr != nil {
		fmt.Fprintln(os.Stderr, "fpspy: trace flush:", res.TraceErr)
	}

	if *outDir != "" {
		writeTraces(res.Store, *outDir)
	}
	emitObs(om, *traceOut)
}

// emitObs prints the metrics summary and writes the Chrome trace file,
// when observability was enabled.
func emitObs(om *obs.Metrics, traceOut string) {
	if om == nil {
		return
	}
	fmt.Print(obs.RenderSummary(om.Snapshot()))
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		if err := om.Tracer.ExportChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d trace events)\n", traceOut, om.Tracer.Emitted()-om.Tracer.Dropped())
	}
}

// writeTraces dumps every per-thread binary trace to dir, plus the
// robustness monitor log when it is non-empty.
func writeTraces(store *core.Store, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fpspy:", err)
		os.Exit(1)
	}
	for _, key := range store.Threads() {
		raw, err := store.RawTrace(key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		path := filepath.Join(dir, key.String())
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (%d records)\n", path, len(raw)/64)
	}
	if log := store.MonitorLog(); log != "" {
		path := filepath.Join(dir, "monitor.fplog")
		if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fpspy:", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s (%d events)\n", path, len(store.MonitorEvents()))
	}
}

// runMPI launches the workload as an MPI job with FPSpy in the
// launcher's environment.
func runMPI(w *workload.Workload, sz workload.Size, cfg core.Config, ranks int, noSpy bool, outDir string) {
	k := kernel.New()
	store := core.NewStore()
	env := map[string]string{}
	if !noSpy {
		k.RegisterPreload(core.PreloadName, core.Factory(store))
		env = cfg.EnvVars()
	}
	_, procs, err := mpi.Launch(k, w.Build(sz), ranks, 16<<20, env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpspy:", err)
		os.Exit(1)
	}
	k.Run(2_000_000_000)
	fmt.Printf("mpirun -np %d %s:\n", ranks, w.Meta.Name)
	for i, p := range procs {
		if !p.Exited {
			fmt.Fprintf(os.Stderr, "fpspy: rank %d did not finish\n", i)
			os.Exit(1)
		}
		user, sys := p.ProcessTimes()
		fmt.Printf("  rank %d (pid %d): exit %d, user %.6fs sys %.6fs\n",
			i, p.PID, p.ExitCode,
			float64(user)/study.ClockHz, float64(sys)/study.ClockHz)
	}
	for _, a := range store.Aggregates() {
		fmt.Println(" ", a)
	}
	if store.Recorded > 0 {
		fmt.Printf("  %d faults handled, %d records captured across ranks\n", store.Faults, store.Recorded)
	}
	if outDir != "" {
		writeTraces(store, outDir)
	}
}

// runValidation reproduces the paper's Section 5 validation: programs
// producing every event, across execution models, in both modes.
func runValidation() {
	models := []struct {
		name  string
		model workload.ValidationModel
	}{
		{"single thread", workload.ModelSingle},
		{"multiple threads", workload.ModelThreads},
		{"multiple processes", workload.ModelProcesses},
		{"processes x threads", workload.ModelProcessesThreads},
		{"confounded with signals", workload.ModelWithSignals},
	}
	fmt.Println("validation matrix (events observed / threads traced):")
	for _, m := range models {
		for _, mode := range []fpspy.Mode{fpspy.ModeAggregate, fpspy.ModeIndividual} {
			res, err := fpspy.Run(workload.BuildValidation(m.model), fpspy.Options{
				Config: fpspy.Config{Mode: mode},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpspy:", err)
				os.Exit(1)
			}
			traced := len(res.Aggregates())
			if mode == fpspy.ModeIndividual {
				traced = len(res.Store.Threads())
			}
			status := "PASS"
			if res.EventSet() != fpspy.AllEvents {
				status = "MISSING " + (fpspy.AllEvents &^ res.EventSet()).String()
			}
			fmt.Printf("  %-24s %-10v %v across %d thread(s): %s\n",
				m.name, mode, res.EventSet(), traced, status)
		}
	}
}
