// Command fpmon is the live observability dashboard for the FPSpy
// reproduction. It runs a workload (or the full study's passes) with
// metrics and tracing enabled, refreshes a text dashboard while the
// simulation executes, and prints the final summary table.
//
// Usage:
//
//	fpmon [-size small|large] [-interval 250ms] <workload>
//	fpmon -study [-workers N]      # monitor the full study's passes
//	fpmon -snapshot metrics.json   # render a saved -metricsout snapshot
//	fpmon -url http://host:port    # poll a remote daemon's /metrics
//	fpmon -url http://a:1,http://b:2,...   # per-peer cluster dashboard
//
// The same snapshot JSON is served live on -pprof's /metrics endpoint
// and on fpspyd's /metrics, so -url turns fpmon into the remote live
// dashboard for a running daemon: it polls the snapshot every
// -interval, redraws, and prints the final summary when interrupted
// (or after -polls refreshes). A comma-separated -url polls every named
// cluster member and stacks one dashboard section per peer; an
// unreachable peer shows as down in its section instead of killing the
// dashboard, so the view stays useful through node failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	fpspy "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/workload"
)

func main() {
	snapshotPath := flag.String("snapshot", "", "render a saved metrics snapshot JSON file and exit")
	remoteURL := flag.String("url", "", "poll remote daemon /metrics snapshots (comma-separated URLs = per-peer cluster dashboard)")
	polls := flag.Int("polls", 0, "with -url, stop after this many refreshes (0 = until interrupted)")
	runStudy := flag.Bool("study", false, "monitor the full study's passes instead of one workload")
	workers := flag.Int("workers", 0, "study worker pool size (0 = one per CPU)")
	size := flag.String("size", "large", "problem size: small or large")
	interval := flag.Duration("interval", 250*time.Millisecond, "dashboard refresh interval")
	noDash := flag.Bool("nodash", false, "skip the live dashboard, print only the final summary")
	pprofAddr := flag.String("pprof", "", "serve pprof and /metrics on this address")
	flag.Parse()

	if *snapshotPath != "" {
		data, err := os.ReadFile(*snapshotPath)
		if err != nil {
			fatal(err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			fatal(err)
		}
		fmt.Print(obs.RenderSummary(snap))
		return
	}
	if *remoteURL != "" {
		if err := pollRemote(*remoteURL, *interval, *polls, *noDash); err != nil {
			fatal(err)
		}
		return
	}

	om := obs.New(obs.Options{TraceCapacity: 1 << 20})
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, om)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fpmon: pprof and /metrics on http://%s\n", srv.Addr)
	}
	sampler := obs.StartSelfSampler(om, *interval)

	done := make(chan error, 1)
	if *runStudy {
		s := study.NewWithWorkers(*workers)
		s.Obs = om
		go func() {
			s.Prewarm()
			done <- nil
		}()
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: fpmon [-interval DUR] <workload> | -study | -snapshot FILE")
			os.Exit(2)
		}
		sz := workload.SizeLarge
		switch *size {
		case "large":
		case "small":
			sz = workload.SizeSmall
		default:
			fmt.Fprintf(os.Stderr, "fpmon: unknown size %q\n", *size)
			os.Exit(2)
		}
		w, err := workload.ByName(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cfg := core.Config{Mode: core.ModeIndividual, ExceptList: core.AllEvents &^ fpspy.FlagInexact}
		go func() {
			_, err := fpspy.Run(w.Build(sz), fpspy.Options{Config: cfg, Obs: om})
			done <- err
		}()
	}

	var runErr error
	if *noDash {
		runErr = <-done
	} else {
		tick := time.NewTicker(*interval)
	loop:
		for {
			select {
			case runErr = <-done:
				tick.Stop()
				break loop
			case <-tick.C:
				// ANSI home+clear keeps the dashboard in place on real
				// terminals and degrades to plain appends elsewhere.
				fmt.Print("\033[H\033[2J")
				fmt.Print(obs.RenderDashboard(om.Snapshot()))
			}
		}
	}
	sampler.Stop()
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Print(obs.RenderSummary(om.Snapshot()))
}

// metricsURL normalizes a -url value to the /metrics endpoint: a bare
// host:port gains the http scheme, and the path is appended unless the
// caller already points at a snapshot route.
func metricsURL(raw string) string {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	if strings.HasSuffix(raw, "/metrics") {
		return raw
	}
	return strings.TrimRight(raw, "/") + "/metrics"
}

// fetchSnapshot scrapes one remote snapshot.
func fetchSnapshot(url string) (obs.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ParseSnapshot(data)
}

// pollRemote is the -url mode: the live dashboard over one or more
// remote daemons' /metrics snapshots. A single URL keeps the classic
// behavior (any fetch error aborts); a comma-separated list renders one
// dashboard section per cluster peer and tolerates down peers, so the
// view survives exactly the node failures a cluster operator watches
// for. It refreshes every interval until the poll budget is spent or
// the user interrupts, then prints each peer's final summary.
func pollRemote(raw string, interval time.Duration, polls int, noDash bool) error {
	var urls []string
	for _, u := range strings.Split(raw, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, metricsURL(u))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("-url: no URLs in %q", raw)
	}
	single := len(urls) == 1

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)

	last := make([]obs.Snapshot, len(urls))
	ever := make([]bool, len(urls)) // ever fetched a snapshot
	up := make([]bool, len(urls))   // last poll succeeded
	seen := 0
	tick := time.NewTicker(interval)
	defer tick.Stop()

	finalSummary := func() {
		for i, url := range urls {
			if !single {
				fmt.Printf("== peer %d/%d %s ==\n", i+1, len(urls), url)
			}
			if ever[i] {
				fmt.Print(obs.RenderSummary(last[i]))
			} else {
				fmt.Println("(no snapshot seen)")
			}
		}
	}

	for {
		for i, url := range urls {
			snap, err := fetchSnapshot(url)
			if err != nil {
				if single {
					return err
				}
				up[i] = false
				continue
			}
			last[i], ever[i], up[i] = snap, true, true
		}
		seen++
		if !noDash {
			fmt.Print("\033[H\033[2J")
			fmt.Printf("fpmon -url %s (poll %d)\n", raw, seen)
			for i, url := range urls {
				if !single {
					state := "up"
					if !up[i] {
						state = "DOWN"
					}
					fmt.Printf("== peer %d/%d %s [%s] ==\n", i+1, len(urls), url, state)
				}
				if up[i] {
					fmt.Print(obs.RenderDashboard(last[i]))
				}
			}
		}
		if polls > 0 && seen >= polls {
			break
		}
		select {
		case <-sigc:
			fmt.Println()
			finalSummary()
			return nil
		case <-tick.C:
		}
	}
	finalSummary()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpmon:", err)
	os.Exit(1)
}
