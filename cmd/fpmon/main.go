// Command fpmon is the live observability dashboard for the FPSpy
// reproduction. It runs a workload (or the full study's passes) with
// metrics and tracing enabled, refreshes a text dashboard while the
// simulation executes, and prints the final summary table.
//
// Usage:
//
//	fpmon [-size small|large] [-interval 250ms] <workload>
//	fpmon -study [-workers N]      # monitor the full study's passes
//	fpmon -snapshot metrics.json   # render a saved -metricsout snapshot
//
// The same snapshot JSON is served live on -pprof's /metrics endpoint,
// so `fpstudy -pprof :6060` plus `curl :6060/metrics | fpmon -snapshot
// /dev/stdin` is the remote equivalent.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	fpspy "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/workload"
)

func main() {
	snapshotPath := flag.String("snapshot", "", "render a saved metrics snapshot JSON file and exit")
	runStudy := flag.Bool("study", false, "monitor the full study's passes instead of one workload")
	workers := flag.Int("workers", 0, "study worker pool size (0 = one per CPU)")
	size := flag.String("size", "large", "problem size: small or large")
	interval := flag.Duration("interval", 250*time.Millisecond, "dashboard refresh interval")
	noDash := flag.Bool("nodash", false, "skip the live dashboard, print only the final summary")
	pprofAddr := flag.String("pprof", "", "serve pprof and /metrics on this address")
	flag.Parse()

	if *snapshotPath != "" {
		data, err := os.ReadFile(*snapshotPath)
		if err != nil {
			fatal(err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			fatal(err)
		}
		fmt.Print(obs.RenderSummary(snap))
		return
	}

	om := obs.New(obs.Options{TraceCapacity: 1 << 20})
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, om)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fpmon: pprof and /metrics on http://%s\n", srv.Addr)
	}
	sampler := obs.StartSelfSampler(om, *interval)

	done := make(chan error, 1)
	if *runStudy {
		s := study.NewWithWorkers(*workers)
		s.Obs = om
		go func() {
			s.Prewarm()
			done <- nil
		}()
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: fpmon [-interval DUR] <workload> | -study | -snapshot FILE")
			os.Exit(2)
		}
		sz := workload.SizeLarge
		switch *size {
		case "large":
		case "small":
			sz = workload.SizeSmall
		default:
			fmt.Fprintf(os.Stderr, "fpmon: unknown size %q\n", *size)
			os.Exit(2)
		}
		w, err := workload.ByName(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cfg := core.Config{Mode: core.ModeIndividual, ExceptList: core.AllEvents &^ fpspy.FlagInexact}
		go func() {
			_, err := fpspy.Run(w.Build(sz), fpspy.Options{Config: cfg, Obs: om})
			done <- err
		}()
	}

	var runErr error
	if *noDash {
		runErr = <-done
	} else {
		tick := time.NewTicker(*interval)
	loop:
		for {
			select {
			case runErr = <-done:
				tick.Stop()
				break loop
			case <-tick.C:
				// ANSI home+clear keeps the dashboard in place on real
				// terminals and degrades to plain appends elsewhere.
				fmt.Print("\033[H\033[2J")
				fmt.Print(obs.RenderDashboard(om.Snapshot()))
			}
		}
	}
	sampler.Stop()
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Print(obs.RenderSummary(om.Snapshot()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpmon:", err)
	os.Exit(1)
}
