// Command fpspyd is the study-as-a-service daemon: it serves the
// fpspy HTTP/JSON API (POST /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/result, GET /v1/figures, GET /metrics) backed by a
// sharded bounded job queue, a content-addressed result cache, and
// per-client rate limiting, replaying submission clones on the study
// scheduler's worker pool.
//
// Usage:
//
//	fpspyd [-addr 127.0.0.1:8765] [-workers N] [-shards 4] [-queue 64]
//	       [-rate R -burst B] [-state queue.gob] [-addrfile FILE]
//	       [-peers URL,URL,...] [-advertise URL] [-join URL]
//
// Clustering: -peers (a comma-separated seed membership), -join (an
// existing member to introduce ourselves to), or -advertise (our own
// URL as peers should dial it) turn the daemon into a cluster node.
// Submissions route by content address on a consistent-hash ring, so
// identical clones study once cluster-wide and the settled outcome is
// cached on every node that routed it. Without -advertise the node
// advertises http://<bound address>, which works when peers share a
// network namespace with us; behind NAT or containers pass -advertise
// explicitly.
//
// SIGINT/SIGTERM drain gracefully: in-flight passes complete, queued
// jobs persist to -state, and a restarted daemon resumes them.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts using :0)")
	workers := flag.Int("workers", 0, "study worker pool size (0 = one per CPU)")
	shards := flag.Int("shards", 4, "job queue shards")
	queue := flag.Int("queue", 64, "queue depth per shard")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 8, "rate limiter burst")
	stateFile := flag.String("state", "", "persist queued jobs here across restarts")
	peers := flag.String("peers", "", "comma-separated peer URLs to cluster with")
	advertise := flag.String("advertise", "", "our URL as peers should dial it (default http://<bound addr>)")
	join := flag.String("join", "", "existing cluster member to join via")
	flag.Parse()

	om := obs.New(obs.Options{TraceCapacity: 1 << 18})
	srv, err := server.New(server.Options{
		Workers:    *workers,
		Shards:     *shards,
		QueueDepth: *queue,
		RatePerSec: *rate,
		Burst:      *burst,
		StateFile:  *stateFile,
		Obs:        om,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "fpspyd: serving on http://%s\n", bound)

	// Clustering: wrap the daemon in a cluster node when any cluster
	// flag is set. The node serves the same client API on the same
	// listener, plus the /cluster/v1/* peer RPCs.
	var node *cluster.Node
	handler := http.Handler(srv)
	if *peers != "" || *join != "" || *advertise != "" {
		self := *advertise
		if self == "" {
			self = "http://" + bound
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" && p != self {
				peerList = append(peerList, p)
			}
		}
		node, err = cluster.NewNode(cluster.Options{
			Self: self, Peers: peerList, Server: srv, Obs: om,
		})
		if err != nil {
			fatal(err)
		}
		handler = node
		fmt.Fprintf(os.Stderr, "fpspyd: clustering as %s with %d seed peer(s)\n", self, len(peerList))
	}

	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	if node != nil && *join != "" {
		if err := node.Join(*join); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fpspyd: joined cluster via %s (%d member(s))\n", *join, len(node.Ring().Known()))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fpspyd: %v, draining\n", sig)
	case err := <-done:
		fatal(err)
	}

	if node != nil {
		node.Close()
	}
	persisted, err := srv.Shutdown()
	if err != nil {
		fatal(err)
	}
	httpSrv.Close() //nolint:errcheck // going down anyway
	if *stateFile != "" {
		fmt.Fprintf(os.Stderr, "fpspyd: persisted %d queued job(s) to %s\n", persisted, *stateFile)
	} else if persisted > 0 {
		fmt.Fprintf(os.Stderr, "fpspyd: dropped %d queued job(s) (no -state file)\n", persisted)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpspyd:", err)
	os.Exit(1)
}
