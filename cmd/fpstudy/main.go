// Command fpstudy runs the paper's full Section 4 methodology over the
// reproduced application and benchmark suites and prints every table and
// figure of the evaluation (Figures 6 through 19 and the Section 6
// feasibility analysis).
//
// Usage:
//
//	fpstudy            # everything, passes parallelized across CPUs
//	fpstudy -only 9    # a single figure
//	fpstudy -workers 1 # force fully serial execution
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/study"
)

func main() {
	only := flag.String("only", "", "emit a single artifact (6-19 or s6)")
	workers := flag.Int("workers", 0, "concurrent simulation passes (0 = one per CPU)")
	flag.Parse()

	s := study.NewWithWorkers(*workers)
	gens := map[string]func() (*study.Table, error){
		"6": s.Figure6, "7": s.Figure7, "8": s.Figure8, "9": s.Figure9,
		"10": s.Figure10, "11": s.Figure11, "12": s.Figure12, "13": s.Figure13,
		"14": s.Figure14, "15": s.Figure15, "16": s.Figure16, "17": s.Figure17,
		"18": s.Figure18, "19": s.Figure19, "s6": s.Section6,
	}
	if *only != "" {
		g, ok := gens[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "fpstudy: unknown artifact %q\n", *only)
			os.Exit(2)
		}
		t, err := g()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		return
	}
	tables, err := s.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpstudy:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
