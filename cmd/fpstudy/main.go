// Command fpstudy runs the paper's full Section 4 methodology over the
// reproduced application and benchmark suites and prints every table and
// figure of the evaluation (Figures 6 through 19 and the Section 6
// feasibility analysis).
//
// Usage:
//
//	fpstudy            # everything, passes parallelized across CPUs
//	fpstudy -only 9    # a single figure
//	fpstudy -workers 1 # force fully serial execution
//	fpstudy -metrics -traceout study.trace.json   # observability on
//
// With -probe it instead runs the accumulation-order reproducibility
// conformance matrix (ROADMAP item 3): every FPRev-style probe kernel
// under every engine configuration and inject schedule, asserting the
// reconstructed accumulation-tree fingerprint never changes (and that
// the deliberately-broken kernel is detected). -probeout writes the
// fingerprint corpus as JSON (the CI artifact); -probetraces dumps one
// representative .fpemon trace per kernel for fpanalyze -accumtree.
//
// With -shadow it runs the shadow-precision root-cause study: each
// selected workload (all corpus apps by default; -shadowonly filters)
// executes with the shadow channel attached at -shadowprec mantissa
// bits, its FP sites are ranked by introduced rounding error, and
// -mitprec adds an adaptive-precision mitigated leg for the
// unmitigated-vs-mitigated comparison. -shadowout writes the full
// report as JSON.
//
// With -metrics (or -traceout/-metricsout/-pprof), every pass shares one
// observability registry: the final summary reconciles exactly with the
// emitted trace events, and the figures remain byte-identical to an
// uninstrumented run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/workload"
)

func main() {
	only := flag.String("only", "", "emit a single artifact (6-19 or s6)")
	workers := flag.Int("workers", 0, "concurrent simulation passes (0 = one per CPU)")
	probe := flag.Bool("probe", false, "run the accumulation-order reproducibility matrix instead of the figures")
	probeSeeds := flag.Int("probeseeds", 4, "inject seeds swept per perturbed schedule (with -probe)")
	probeOut := flag.String("probeout", "", "write the probe fingerprint corpus as JSON (with -probe)")
	probeTraces := flag.String("probetraces", "", "directory for one representative .fpemon trace per probe kernel (with -probe)")
	shadow := flag.Bool("shadow", false, "run the shadow-precision root-cause study instead of the figures")
	shadowPrec := flag.Uint64("shadowprec", study.DefaultShadowPrec, "shadow precision in mantissa bits (with -shadow)")
	shadowOnly := flag.String("shadowonly", "", "comma-separated workloads to shadow (with -shadow; empty = all corpus apps)")
	shadowOut := flag.String("shadowout", "", "write the shadow report as JSON (with -shadow)")
	mitPrec := flag.Uint("mitprec", 0, "add an adaptive-precision mitigated leg at this precision (with -shadow)")
	metrics := flag.Bool("metrics", false, "collect observability metrics and print a summary")
	metricsOut := flag.String("metricsout", "", "write the final metrics snapshot as JSON (implies -metrics)")
	traceOut := flag.String("traceout", "", "write a Chrome trace_event file (implies -metrics)")
	pprofAddr := flag.String("pprof", "", "serve pprof and /metrics on this address")
	flag.Parse()

	s := study.NewWithWorkers(*workers)
	var om *obs.Metrics
	if *metrics || *metricsOut != "" || *traceOut != "" || *pprofAddr != "" {
		om = obs.New(obs.Options{TraceCapacity: 1 << 20})
		s.Obs = om
		defer emitObs(om, *metricsOut, *traceOut)
		sampler := obs.StartSelfSampler(om, 10*time.Millisecond)
		defer sampler.Stop()
	}
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, om)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fpstudy: pprof and /metrics on http://%s\n", srv.Addr)
	}
	if *probe {
		if err := runProbe(s, *probeSeeds, *probeOut, *probeTraces); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		return
	}
	if *shadow {
		if err := runShadow(s, *shadowPrec, *shadowOnly, *shadowOut, *mitPrec); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		return
	}
	gens := map[string]func() (*study.Table, error){
		"6": s.Figure6, "7": s.Figure7, "8": s.Figure8, "9": s.Figure9,
		"10": s.Figure10, "11": s.Figure11, "12": s.Figure12, "13": s.Figure13,
		"14": s.Figure14, "15": s.Figure15, "16": s.Figure16, "17": s.Figure17,
		"18": s.Figure18, "19": s.Figure19, "s6": s.Section6,
	}
	if *only != "" {
		g, ok := gens[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "fpstudy: unknown artifact %q\n", *only)
			os.Exit(2)
		}
		t, err := g()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		return
	}
	tables, err := s.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpstudy:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

// runProbe executes the reproducibility conformance matrix and emits
// its artifacts. A nonzero failure count (including cross-cell
// fingerprint disagreement) is a hard error so CI fails the build.
func runProbe(s *study.Study, nseeds int, outFile, traceDir string) error {
	if nseeds < 1 {
		return fmt.Errorf("-probeseeds must be at least 1, got %d", nseeds)
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	cells := study.DefaultProbeCells(workload.SizeSmall, seeds)
	r := s.ProbeMatrix(cells)
	fmt.Println(r.Table().Render())
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fpstudy: wrote %s (%d cells)\n", outFile, len(r.Cells))
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
		for _, kind := range workload.ProbeKinds() {
			spec := workload.DefaultProbeSpec(kind, workload.SizeSmall)
			path := filepath.Join(traceDir, fmt.Sprintf("probe-%s.fpemon", kind))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			fp, err := study.WriteProbeTrace(spec, f)
			if err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "fpstudy: wrote %s (%s)\n", path, fp)
		}
	}
	if r.Failures > 0 {
		return fmt.Errorf("probe matrix: %d of %d cells failed (inconsistent: %v)",
			r.Failures, len(r.Cells), r.Inconsistent)
	}
	return nil
}

// runShadow executes the shadow-precision root-cause study and emits
// its artifacts. Cell errors are hard failures so CI fails the build.
func runShadow(s *study.Study, prec uint64, only, outFile string, mitPrec uint) error {
	var names []string
	if only != "" {
		for _, n := range strings.Split(only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	cells := study.DefaultShadowCells(names, prec, mitPrec, workload.SizeSmall)
	r := s.ShadowMatrix(cells)
	fmt.Println(r.Table().Render())
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fpstudy: wrote %s (%d cells)\n", outFile, len(r.Cells))
	}
	if r.Failures > 0 {
		return fmt.Errorf("shadow study: %d of %d cells failed", r.Failures, len(r.Cells))
	}
	return nil
}

// emitObs prints the metrics summary and writes the snapshot/trace
// files after the study completes.
func emitObs(om *obs.Metrics, metricsOut, traceOut string) {
	fmt.Print(obs.RenderSummary(om.Snapshot()))
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		if err := om.Snapshot().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fpstudy: wrote %s\n", metricsOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		if err := om.Tracer.ExportChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fpstudy:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fpstudy: wrote %s (%d trace events)\n",
			traceOut, om.Tracer.Emitted()-om.Tracer.Dropped())
	}
}
