// Command fptrace decodes FPSpy's binary individual-mode trace files
// into the human-readable form produced by the paper's scripts, or into
// JSON for downstream tooling.
//
// Usage:
//
//	fptrace [-json] [-summary] <file.fpemon>...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// jsonRecord is the JSON shape of one trace record.
type jsonRecord struct {
	Time     uint64 `json:"time"`
	TID      uint32 `json:"tid"`
	Seq      uint64 `json:"seq"`
	RIP      string `json:"rip"`
	RSP      string `json:"rsp"`
	Mnemonic string `json:"mnemonic"`
	Event    string `json:"event"`
	Raised   string `json:"raised"`
	MXCSR    uint32 `json:"mxcsr"`
}

func main() {
	asJSON := flag.Bool("json", false, "emit JSON records")
	summary := flag.Bool("summary", false, "emit only per-file event summaries")
	pprofAddr := flag.String("pprof", "", "serve pprof on this address while decoding")
	flag.Parse()
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fptrace:", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fptrace [-json] [-summary] <file.fpemon>...")
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fptrace:", err)
			os.Exit(1)
		}
		recs, err := trace.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fptrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		switch {
		case *summary:
			var union softfloat.Flags
			counts := map[softfloat.Flags]int{}
			for i := range recs {
				union |= recs[i].Raised
				counts[recs[i].Event]++
			}
			fmt.Printf("%s: %d records, conditions %v\n", path, len(recs), union)
			for ev, n := range counts {
				fmt.Printf("  %-6v %d\n", ev, n)
			}
		case *asJSON:
			for i := range recs {
				r := &recs[i]
				if err := enc.Encode(jsonRecord{
					Time: r.Time, TID: r.TID, Seq: r.Seq,
					RIP:      fmt.Sprintf("%#x", r.Rip),
					RSP:      fmt.Sprintf("%#x", r.Rsp),
					Mnemonic: isa.Opcode(r.Opcode).String(),
					Event:    r.Event.String(),
					Raised:   r.Raised.String(),
					MXCSR:    r.MXCSR,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "fptrace:", err)
					os.Exit(1)
				}
			}
		default:
			fmt.Printf("# %s: %d records\n", path, len(recs))
			for i := range recs {
				fmt.Println(recs[i].Render(isa.Opcode(recs[i].Opcode).String()))
			}
		}
	}
}
