package main

import (
	"encoding/json"
	"os"

	"repro/internal/binscan"
	"repro/internal/binscan/absint"
	"repro/internal/trace"
)

// The -json schema. Everything fpscan prints as text has a field here,
// so CI can diff scans and external tooling can consume the inventory
// and the Figure 8 tables without screen-scraping.

type jsonCFG struct {
	Instructions   int `json:"instructions"`
	Blocks         int `json:"blocks"`
	Edges          int `json:"edges"`
	IndirectRoots  int `json:"indirectRoots"`
	ReachableInsts int `json:"reachableInstructions"`
	ReachableBlks  int `json:"reachableBlocks"`
}

type jsonForm struct {
	Form      string `json:"form"`
	Sites     uint64 `json:"sites"`
	Reachable uint64 `json:"reachableSites"`
}

type jsonLibc struct {
	Symbol    string `json:"symbol"`
	Sites     int    `json:"sites"`
	Reachable int    `json:"reachableSites"`
}

type jsonFeasibility struct {
	TotalSites        int      `json:"totalSites"`
	ReachableSites    int      `json:"reachableSites"`
	EmulableSites     int      `json:"emulableSites"`
	EmulableReachable int      `json:"emulableReachable"`
	UnsupportedForms  []string `json:"unsupportedForms,omitempty"`
}

type jsonSiteVerdict struct {
	Addr      uint64            `json:"addr"`
	Index     int               `json:"index"`
	Form      string            `json:"form"`
	Reachable bool              `json:"reachable"`
	May       string            `json:"may"`
	Must      string            `json:"must"`
	Verdicts  map[string]string `json:"verdicts"`
	Prunable  bool              `json:"prunable"`
}

type jsonAbsint struct {
	EnvVaries bool              `json:"envVaries"`
	Prunable  int               `json:"prunableSites"`
	ByVerdict map[string]int    `json:"sitesByWorstVerdict"`
	Sites     []jsonSiteVerdict `json:"sites"`
}

type jsonValidation struct {
	Events         int      `json:"events"`
	DynamicSites   int      `json:"dynamicSites"`
	MatchedSites   int      `json:"matchedSites"`
	Recall         float64  `json:"recall"`
	Precision      float64  `json:"precision"`
	Missing        []uint64 `json:"missing,omitempty"`
	UnreachableHit []uint64 `json:"unreachableHit,omitempty"`
	// AbsintViolations lists soundness failures of the abstract
	// interpreter against the dynamic trace (with -absint).
	AbsintViolations []string `json:"absintViolations,omitempty"`
}

type jsonScan struct {
	Workload    string          `json:"workload"`
	Size        string          `json:"size"`
	CFG         jsonCFG         `json:"cfg"`
	Forms       []jsonForm      `json:"forms"`
	Libc        []jsonLibc      `json:"libc"`
	Feasibility jsonFeasibility `json:"feasibility"`
	Absint      *jsonAbsint     `json:"absint,omitempty"`
	Validation  *jsonValidation `json:"validation,omitempty"`
}

func buildJSONScan(name, size string, scan *binscan.Scan) *jsonScan {
	st := scan.CFG.Stats()
	js := &jsonScan{
		Workload: name,
		Size:     size,
		CFG: jsonCFG{
			Instructions:   st.Insts,
			Blocks:         st.Blocks,
			Edges:          st.Edges,
			IndirectRoots:  st.Roots,
			ReachableInsts: st.ReachableInsts,
			ReachableBlks:  st.ReachableBlocks,
		},
	}
	reach := map[string]uint64{}
	for _, e := range scan.FormInventory(true) {
		reach[e.Key] = e.Count
	}
	for _, e := range scan.FormInventory(false) {
		js.Forms = append(js.Forms, jsonForm{Form: e.Key, Sites: e.Count, Reachable: reach[e.Key]})
	}
	for _, ref := range scan.Libc {
		js.Libc = append(js.Libc, jsonLibc{Symbol: ref.Sym, Sites: ref.Sites, Reachable: ref.ReachableSites})
	}
	rep := scan.PatchFeasibility(patchCycles, emulCycles, trapCycles)
	js.Feasibility = jsonFeasibility{
		TotalSites:        rep.TotalSites,
		ReachableSites:    rep.ReachableSites,
		EmulableSites:     rep.EmulableSites,
		EmulableReachable: rep.EmulableReachable,
		UnsupportedForms:  rep.UnsupportedForms,
	}
	return js
}

// worstVerdict is the site's strongest classification across classes:
// "must" if any class must trap, "never" if no class can, "may"
// otherwise. It drives the summary histogram.
func worstVerdict(s *absint.SiteVerdict) string {
	if !s.Reachable {
		return "unreachable"
	}
	if s.Must != 0 {
		return "must"
	}
	if s.May == 0 {
		return "never"
	}
	return "may"
}

func buildJSONAbsint(res *absint.Result) *jsonAbsint {
	ja := &jsonAbsint{
		EnvVaries: res.EnvVaries,
		Prunable:  res.PrunableCount(),
		ByVerdict: map[string]int{},
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		verdicts := map[string]string{}
		for _, c := range absint.Classes {
			verdicts[c.Name] = s.VerdictFor(c.Flag).String()
		}
		ja.ByVerdict[worstVerdict(s)]++
		ja.Sites = append(ja.Sites, jsonSiteVerdict{
			Addr:      s.Addr,
			Index:     s.Index,
			Form:      s.Op.String(),
			Reachable: s.Reachable,
			May:       s.May.String(),
			Must:      s.Must.String(),
			Verdicts:  verdicts,
			Prunable:  s.Prunable,
		})
	}
	return ja
}

func buildJSONValidation(v binscan.Validation, res *absint.Result, recs []trace.Record) *jsonValidation {
	jv := &jsonValidation{
		Events:         v.Events,
		DynamicSites:   v.DynamicSites,
		MatchedSites:   v.MatchedSites,
		Recall:         v.Recall,
		Precision:      v.Precision,
		Missing:        v.Missing,
		UnreachableHit: v.UnreachableHit,
	}
	if res != nil {
		for _, viol := range absint.CheckSoundness(res, recs) {
			jv.AbsintViolations = append(jv.AbsintViolations, viol.String())
		}
	}
	return jv
}

func emitJSON(scans []*jsonScan) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(scans)
}
