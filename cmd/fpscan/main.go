// Command fpscan statically analyzes guest workload binaries with
// internal/binscan: CFG recovery and reachability, the floating point
// site inventory by instruction form, interposed-libc references split
// into present vs reachable, and the Section 6 patch-feasibility
// summary. With -validate it additionally runs the workload under FPSpy
// in individual mode and replays the captured trace against the scan,
// reporting the precision/recall of the static prediction (recall must
// be 1.0 — every dynamic trap address is a statically discovered site).
//
// Usage:
//
//	fpscan [-size small|large] [-validate] [-top N] <workload>...
//	fpscan -all
package main

import (
	"flag"
	"fmt"
	"os"

	fpspy "repro"
	"repro/internal/analysis"
	"repro/internal/binscan"
	"repro/internal/binscan/absint"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Default cycle costs for the feasibility model: patching a site costs
// ~1000 cycles once, software emulation ~150 cycles per event, and
// trap-and-emulate ~6000 cycles per event (two kernel crossings).
const (
	patchCycles = 1000
	emulCycles  = 150
	trapCycles  = 6000
)

func main() {
	all := flag.Bool("all", false, "scan every registered workload")
	sizeFlag := flag.String("size", "large", "problem size: small or large")
	validate := flag.Bool("validate", false, "run under FPSpy and validate the scan against the dynamic trace")
	absintFlag := flag.Bool("absint", false, "classify every site never/may/must-trap per exception class with the abstract interpreter")
	jsonOut := flag.Bool("json", false, "emit the scan as JSON instead of text")
	top := flag.Int("top", 10, "how many inventory entries to print per table")
	pprofAddr := flag.String("pprof", "", "serve pprof on this address while scanning")
	flag.Parse()
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpscan:", err)
			os.Exit(1)
		}
		defer srv.Close()
	}

	size := workload.SizeLarge
	switch *sizeFlag {
	case "large":
	case "small":
		size = workload.SizeSmall
	default:
		fmt.Fprintf(os.Stderr, "fpscan: unknown size %q\n", *sizeFlag)
		os.Exit(2)
	}

	var targets []*workload.Workload
	if *all {
		targets = workload.All()
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: fpscan [-size small|large] [-validate] [-top N] <workload>... | -all")
			os.Exit(2)
		}
		for _, name := range flag.Args() {
			w, err := workload.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpscan:", err)
				os.Exit(1)
			}
			targets = append(targets, w)
		}
	}

	failed := false
	var scans []*jsonScan
	for _, w := range targets {
		js, ok := scanOne(w, size, *sizeFlag, *validate, *absintFlag, *jsonOut, *top)
		if !ok {
			failed = true
		}
		scans = append(scans, js)
	}
	if *jsonOut {
		if err := emitJSON(scans); err != nil {
			fmt.Fprintln(os.Stderr, "fpscan:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func scanOne(w *workload.Workload, size workload.Size, sizeName string, validate, doAbsint, jsonMode bool, top int) (*jsonScan, bool) {
	prog := w.Build(size)
	scan := binscan.ScanProgram(prog)
	js := buildJSONScan(w.Meta.Name, sizeName, scan)
	var absRes *absint.Result
	if doAbsint {
		absRes = absint.Analyze(prog)
		js.Absint = buildJSONAbsint(absRes)
	}
	ok := scanText(w, prog, scan, js, absRes, validate, jsonMode, top)
	return js, ok
}

func scanText(w *workload.Workload, prog *isa.Program, scan *binscan.Scan, js *jsonScan, absRes *absint.Result, validate, jsonMode bool, top int) bool {
	st := scan.CFG.Stats()
	if jsonMode {
		return scanRest(w, prog, scan, js, absRes, validate, jsonMode)
	}

	fmt.Printf("=== %s ===\n", w.Meta.Name)
	fmt.Printf("cfg: %d instructions, %d blocks, %d edges, %d indirect roots\n",
		st.Insts, st.Blocks, st.Edges, st.Roots)
	fmt.Printf("reachability: %d/%d blocks, %d/%d instructions (%.1f%%)\n",
		st.ReachableBlocks, st.Blocks, st.ReachableInsts, st.Insts,
		100*float64(st.ReachableInsts)/float64(max(st.Insts, 1)))

	forms := scan.FormInventory(false)
	reach := scan.FormInventory(true)
	reachCount := map[string]uint64{}
	for _, e := range reach {
		reachCount[e.Key] = e.Count
	}
	fmt.Printf("\nfp sites by form: %d sites across %d forms (%d forms cover 99%% of sites)\n",
		analysis.TotalEvents(forms), len(forms), analysis.CoverageCount(forms, 0.99))
	limit := min(top, len(forms))
	for _, e := range forms[:limit] {
		fmt.Printf("  %-12s %5d sites  (%d reachable)\n", e.Key, e.Count, reachCount[e.Key])
	}
	if len(forms) > limit {
		fmt.Printf("  ... %d more forms\n", len(forms)-limit)
	}

	if len(scan.Libc) > 0 {
		fmt.Println("\nlibc references (present -> reachable):")
		for _, ref := range scan.Libc {
			state := "reachable"
			if !ref.Reachable() {
				state = "dead code only"
			}
			fmt.Printf("  %-16s %d site(s), %d reachable  [%s]\n",
				ref.Sym, ref.Sites, ref.ReachableSites, state)
		}
	} else {
		fmt.Println("\nlibc references: none")
	}

	rep := scan.PatchFeasibility(patchCycles, emulCycles, trapCycles)
	fmt.Printf("\npatch feasibility: %d sites (%d reachable), %d emulable by the mitigation prototype (%d reachable)\n",
		rep.TotalSites, rep.ReachableSites, rep.EmulableSites, rep.EmulableReachable)
	if len(rep.UnsupportedForms) > 0 {
		fmt.Printf("  unsupported forms (fall back to mask-and-step): %v\n", rep.UnsupportedForms)
	}
	if rep.Feasibility.TotalEvents > 0 {
		verdict := "trap-and-emulate wins"
		if rep.Feasibility.PatchWins {
			verdict = "patching wins"
		}
		fmt.Printf("  static model: patch %.0f cyc/event vs trap %.0f cyc/event -> %s\n",
			rep.Feasibility.PatchCyclesPerEvent, rep.Feasibility.TrapCyclesPerEvent, verdict)
	}

	return scanRest(w, prog, scan, js, absRes, validate, jsonMode)
}

// scanRest handles the absint verdict report and the dynamic validation
// pass, filling the JSON document and (in text mode) printing them.
func scanRest(w *workload.Workload, prog *isa.Program, scan *binscan.Scan, js *jsonScan, absRes *absint.Result, validate, jsonMode bool) bool {
	ok := true
	if absRes != nil && !jsonMode {
		ja := js.Absint
		fmt.Printf("\nabsint verdicts: %d never / %d may / %d must / %d unreachable, %d prunable",
			ja.ByVerdict["never"], ja.ByVerdict["may"], ja.ByVerdict["must"],
			ja.ByVerdict["unreachable"], ja.Prunable)
		if ja.EnvVaries {
			fmt.Print("  [env varies: pruning off]")
		}
		fmt.Println()
		shown := 0
		for i := range absRes.Sites {
			s := &absRes.Sites[i]
			if !s.Reachable || s.May == 0 {
				continue
			}
			if shown < 10 {
				fmt.Printf("  %#x %-12s may=%-15s must=%s\n", s.Addr, s.Op, s.May, s.Must)
			}
			shown++
		}
		if shown > 10 {
			fmt.Printf("  ... %d more may-trap sites\n", shown-10)
		}
	}

	if validate {
		res, err := fpspy.Run(prog, fpspy.Options{Config: fpspy.Config{
			Mode:       fpspy.ModeIndividual,
			ExceptList: fpspy.AllEvents,
		}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpscan: %s: %v\n", w.Meta.Name, err)
			return false
		}
		recs, err := res.Records()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpscan: %s: %v\n", w.Meta.Name, err)
			return false
		}
		v := scan.Validate(recs)
		js.Validation = buildJSONValidation(v, absRes, recs)
		if !jsonMode {
			fmt.Printf("\nstatic-vs-dynamic validation: %v\n", v)
			cov := analysis.StaticCoverageOf(recs, scan.SiteAddrs(true))
			fmt.Printf("coverage: %d/%d reachable sites exercised (%.1f%%), event coverage %.3f\n",
				cov.CoveredSites, cov.StaticSites, 100*cov.SiteCoverage, cov.EventCoverage)
		}
		if !v.Sound() {
			fmt.Fprintf(os.Stderr, "fpscan: %s: SOUNDNESS VIOLATION: missing=%#x unreachable-hit=%#x\n",
				w.Meta.Name, v.Missing, v.UnreachableHit)
			ok = false
		}
		for _, viol := range js.Validation.AbsintViolations {
			fmt.Fprintf(os.Stderr, "fpscan: %s: ABSINT SOUNDNESS VIOLATION: %s\n", w.Meta.Name, viol)
			ok = false
		}
	}
	if !jsonMode {
		fmt.Println()
	}
	return ok
}
