// Command fpctl is the fpspyd client: it captures submission clones
// from the workload registry, submits them to a daemon, and follows
// their status, result streams, and the daemon's aggregate figures.
//
// Usage:
//
//	fpctl capture -workload nas-ep [-size small|large] [-mem N] [-env K=V]... -o ep.clone
//	fpctl submit  -server URL -job ep.clone [-name NAME] [-mode individual] [...]
//	fpctl status  -server URL -id job-000001
//	fpctl result  -server URL -id job-000001        # NDJSON stream to stdout
//	fpctl watch   -server URL -id job-000001
//	fpctl figures -server URL [-id 8]
//	fpctl rootcause -server URL -job ep.clone [-prec 113] [-top 10]
//
// submit's configuration flags mirror the paper's FPE_* environment
// variables and are parsed by the same code path (core.ParseConfig).
//
// Against a cluster, any node is the whole service: -server may name
// any member (submissions route to the clone's owner internally), or a
// comma-separated list of members ("http://a:8765,http://b:8765") the
// client fails over between when one stops answering. Retried and
// failed-over submissions are safe: jobs are content-addressed, so a
// duplicate arrival is a cache hit, never a second study.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		capture(os.Args[2:])
	case "submit":
		submit(os.Args[2:])
	case "status":
		status(os.Args[2:])
	case "result":
		result(os.Args[2:])
	case "watch":
		watch(os.Args[2:])
	case "figures":
		figures(os.Args[2:])
	case "rootcause":
		rootcause(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fpctl capture|submit|status|result|watch|figures|rootcause [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpctl:", err)
	os.Exit(1)
}

// envList collects repeated -env K=V flags.
type envList map[string]string

func (e envList) String() string { return fmt.Sprintf("%v", map[string]string(e)) }
func (e envList) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want K=V, got %q", v)
	}
	e[k] = val
	return nil
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	name := fs.String("workload", "", "workload to capture (required)")
	size := fs.String("size", "small", "problem size: small or large")
	mem := fs.Int("mem", 4<<20, "memory request in bytes")
	out := fs.String("o", "", "output clone file (required)")
	env := envList{}
	fs.Var(env, "env", "launch environment entry K=V (repeatable)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *name == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	w, err := workload.ByName(*name)
	if err != nil {
		fatal(err)
	}
	sz := workload.SizeLarge
	switch *size {
	case "large":
	case "small":
		sz = workload.SizeSmall
	default:
		fatal(fmt.Errorf("unknown size %q", *size))
	}
	job := jobs.Capture(*name, w.Build(sz), env, *mem)
	blob, err := job.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("captured %s (%d bytes) -> %s\n", *name, len(blob), *out)
}

// clientFlags adds the flags every daemon-facing subcommand shares.
func clientFlags(fs *flag.FlagSet) (srv, id *string) {
	srv = fs.String("server", "http://127.0.0.1:8765",
		"daemon base URL, or comma-separated cluster member URLs to fail over between")
	id = fs.String("client", "fpctl", "client identity for rate limiting")
	return
}

func submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	jobFile := fs.String("job", "", "clone file from fpctl capture (required)")
	name := fs.String("name", "", "override the submission name")
	mode := fs.String("mode", "aggregate", "FPE_MODE: aggregate or individual")
	aggressive := fs.Bool("aggressive", false, "FPE_AGGRESSIVE")
	except := fs.String("except", "", "FPE_EXCEPT_LIST (comma-separated)")
	sample := fs.String("sample", "", "FPE_SAMPLE (N or on:off microseconds)")
	storm := fs.String("storm", "", "FPE_STORM (faults:cycles)")
	maxcount := fs.String("maxcount", "", "FPE_MAXCOUNT")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *jobFile == "" {
		fs.Usage()
		os.Exit(2)
	}
	blob, err := os.ReadFile(*jobFile)
	if err != nil {
		fatal(err)
	}
	env := map[string]string{"FPE_MODE": *mode}
	if *aggressive {
		env["FPE_AGGRESSIVE"] = "yes"
	}
	if *except != "" {
		env["FPE_EXCEPT_LIST"] = *except
	}
	if *sample != "" {
		env["FPE_SAMPLE"] = *sample
	}
	if *storm != "" {
		env["FPE_STORM"] = *storm
	}
	if *maxcount != "" {
		env["FPE_MAXCOUNT"] = *maxcount
	}
	cfg, err := core.ParseConfig(env)
	if err != nil {
		fatal(err)
	}
	resp, err := client.New(*srv, *cid).SubmitBlob(*name, blob, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("id=%s state=%s cacheHit=%v\n", resp.ID, resp.State, resp.CacheHit)
}

func status(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *id == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := client.New(*srv, *cid).Status(*id)
	if err != nil {
		fatal(err)
	}
	printStatus(st)
}

func printStatus(st *server.StatusResponse) {
	fmt.Printf("id=%s name=%s state=%s cacheHit=%v client=%s", st.ID, st.Name, st.State, st.CacheHit, st.Client)
	if st.Error != "" {
		fmt.Printf(" error=%q", st.Error)
	}
	fmt.Println()
}

func result(args []string) {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *id == "" {
		fs.Usage()
		os.Exit(2)
	}
	// Stream the NDJSON through verbatim: event lines as the raw
	// monitor-log text, then the summary.
	sum, err := client.New(*srv, *cid).StreamResult(*id, func(line server.ResultLine) error {
		if line.Type == "event" {
			fmt.Println(line.Line)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("summary: steps=%d wallCycles=%d exit=%d eventSet=%#x records=%d aggregates=%d events=%d cacheHit=%v\n",
		sum.Steps, sum.WallCycles, sum.ExitCode, sum.EventSet, sum.Records, sum.Aggregates, sum.Events, sum.CacheHit)
}

func watch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	id := fs.String("id", "", "job ID (required)")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll interval")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *id == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := client.New(*srv, *cid).Watch(*id, *interval)
	if err != nil {
		fatal(err)
	}
	printStatus(st)
	if st.State == server.StateFailed {
		os.Exit(1)
	}
}

// rootcause submits a clone as a shadow job (POST /v1/shadowjobs),
// waits for the pass, and renders the ranked per-site attribution the
// result stream carries.
func rootcause(args []string) {
	fs := flag.NewFlagSet("rootcause", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	jobFile := fs.String("job", "", "clone file from fpctl capture (required)")
	name := fs.String("name", "", "override the submission name")
	prec := fs.Uint64("prec", 0, "shadow precision in mantissa bits (0 = server default)")
	top := fs.Int("top", 10, "sites to print (0 = all)")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll interval")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *jobFile == "" {
		fs.Usage()
		os.Exit(2)
	}
	blob, err := os.ReadFile(*jobFile)
	if err != nil {
		fatal(err)
	}
	c := client.New(*srv, *cid)
	resp, err := c.SubmitShadowBlobContext(context.Background(), *name, blob, core.Config{}, *prec)
	if err != nil {
		fatal(err)
	}
	st, err := c.Watch(resp.ID, *interval)
	if err != nil {
		fatal(err)
	}
	if st.State == server.StateFailed {
		printStatus(st)
		os.Exit(1)
	}
	var sites []analysis.RootCauseSite
	sum, err := c.StreamResult(resp.ID, func(line server.ResultLine) error {
		if line.Type == "site" && line.Site != nil {
			sites = append(sites, *line.Site)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("root cause @ %d-bit shadow: %d sites, %d ops, %.4g ulps introduced (99%% in top %d), max divergence %d ulps\n",
		sum.ShadowPrec, sum.ShadowSites, sum.ShadowOps, sum.ShadowLocalUlps, sum.ShadowSites99, sum.ShadowMaxUlps)
	fmt.Printf("%4s  %-12s %-8s %10s %10s  %12s %12s %8s\n",
		"rank", "addr", "op", "count", "diverged", "local-ulps", "prop-ulps", "max-ulps")
	for i, s := range sites {
		if *top > 0 && i >= *top {
			fmt.Printf("... %d more sites\n", len(sites)-i)
			break
		}
		fmt.Printf("%4d  %#-12x %-8s %10d %10d  %12.4g %12.4g %8d\n",
			i+1, s.Addr, s.Op, s.Count, s.Diverged, s.LocalUlps, s.PropUlps, s.MaxUlps)
	}
}

func figures(args []string) {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	srv, cid := clientFlags(fs)
	id := fs.String("id", "", "figure ID (empty = list)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	c := client.New(*srv, *cid)
	if *id == "" {
		ids, err := c.Figures()
		if err != nil {
			fatal(err)
		}
		fmt.Println(strings.Join(ids, " "))
		return
	}
	fig, err := c.Figure(*id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s — %s\n", fig.ID, fig.Title)
	fmt.Println(strings.Join(fig.Header, "  "))
	for _, row := range fig.Rows {
		fmt.Println(strings.Join(row, "  "))
	}
	for _, n := range fig.Notes {
		fmt.Println("note:", n)
	}
}
