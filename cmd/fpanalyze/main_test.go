package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestReportMonitorLog checks the -log report end to end: a rendered
// monitor log on disk comes back as human-readable degradation lines,
// including the signal-fight tally.
func TestReportMonitorLog(t *testing.T) {
	evs := []trace.MonitorEvent{
		{Time: 10, PID: 1, TID: 1, Kind: trace.EventSignalFight, Signal: "SIGFPE", Count: 1},
		{Time: 20, PID: 1, TID: 1, Kind: trace.EventSignalFight, Signal: "SIGFPE", Count: 2},
		{Time: 25, PID: 1, TID: 1, Kind: trace.EventReassert, Signal: "SIGFPE", Reason: "mxcsr-stomp"},
		{Time: 30, PID: 1, Kind: trace.EventAbort, From: "individual", To: "detached", Reason: "fe-access"},
		{Time: 40, PID: 2, Kind: trace.EventDemote, From: "individual", To: "aggregate", Reason: "trap-storm"},
	}
	path := filepath.Join(t.TempDir(), "monitor.fplog")
	if err := os.WriteFile(path, []byte(trace.RenderMonitorLog(evs)), 0o644); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	reportMonitorLog(path)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"monitor log: 5 events",
		"app fought for SIGFPE 2 times (absorbed)",
		"reason=fe-access",
		"reason=trap-storm",
		"re-asserted masks",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
