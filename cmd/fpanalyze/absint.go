package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/binscan/absint"
	"repro/internal/softfloat"
	"repro/internal/trace"
	"repro/internal/workload"
)

// reportAbsint cross-references the dynamic per-address rank table
// against the abstract interpreter's static verdicts for the named
// workload — the static counterpart of the paper's Figure 19: which of
// the statically possible sites the run actually exercised, and whether
// any observed condition contradicts a never-trap verdict. It returns
// false on a soundness violation.
func reportAbsint(name, sizeName string, recs []trace.Record) bool {
	w, err := workload.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	size := workload.SizeLarge
	if sizeName == "small" {
		size = workload.SizeSmall
	}
	prog := w.Build(size)
	res := absint.Analyze(prog)

	// Dynamic view: events and raised-condition union per address.
	events := map[uint64]uint64{}
	raised := map[uint64]softfloat.Flags{}
	for i := range recs {
		events[recs[i].Rip]++
		raised[recs[i].Rip] |= recs[i].Raised
	}

	reachable, exercised, never := 0, 0, 0
	for i := range res.Sites {
		s := &res.Sites[i]
		if !s.Reachable {
			continue
		}
		reachable++
		if s.May == 0 {
			never++
		}
		if events[s.Addr] > 0 {
			exercised++
		}
	}
	fmt.Printf("\nstatic verdicts vs dynamic trace (%s, %s):\n", name, sizeName)
	fmt.Printf("  %d reachable sites: %d proven never-trap, %d exercised dynamically (%.1f%% of the %d may/must sites)\n",
		reachable, never, exercised,
		100*float64(exercised)/float64(max(reachable-never, 1)), reachable-never)
	if res.EnvVaries {
		fmt.Println("  note: program rewrites MXCSR; verdicts cover all rounding environments")
	}

	addrs := make([]uint64, 0, len(events))
	for a := range events {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if events[addrs[i]] != events[addrs[j]] {
			return events[addrs[i]] > events[addrs[j]]
		}
		return addrs[i] < addrs[j]
	})
	limit := 20
	if len(addrs) < limit {
		limit = len(addrs)
	}
	fmt.Println("  rank  addr         form         events     dynamic    static-may      static-must")
	for _, a := range addrs[:limit] {
		site := res.SiteAt(a)
		if site == nil {
			fmt.Printf("  !!    %#-12x %-12s %-10d %-10s NOT A STATIC SITE\n", a, "?", events[a], raised[a])
			continue
		}
		fmt.Printf("  %5d %#-12x %-12s %-10d %-10s may=%-14s must=%s\n",
			events[a], a, site.Op, events[a], raised[a], site.May, site.Must)
	}
	if len(addrs) > limit {
		fmt.Printf("  ... %d more dynamic sites\n", len(addrs)-limit)
	}

	ok := true
	for _, v := range absint.CheckSoundness(res, recs) {
		fmt.Fprintf(os.Stderr, "fpanalyze: ABSINT SOUNDNESS VIOLATION: %s\n", v)
		ok = false
	}
	if ok {
		fmt.Printf("  soundness: every dynamically raised condition is statically may-possible (%d records checked)\n", len(recs))
	}
	return ok
}
