package main

import (
	"fmt"
	"os"

	fpspy "repro"
	"repro/internal/softfloat"
	"repro/internal/workload"
)

// reportRootCause runs the named workload with the shadow-precision
// channel attached and renders the ranked per-site attribution: which
// instruction sites introduce the rounding error, how much of it is
// local versus inherited, and how concentrated the error mass is (the
// paper's 99%-coverage locality statistic over ULPs instead of event
// counts). A second, individual-mode pass cross-checks the attribution
// against the dynamic trace — every site charged with local error must
// have raised Inexact dynamically — and a mitigated leg at mitPrec
// renders the unmitigated-vs-mitigated comparison. Returns false (and
// reports why) when the consistency check fails.
func reportRootCause(name, sizeName string, prec uint64, mitPrec uint, top int) bool {
	w, err := workload.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	size := workload.SizeLarge
	if sizeName == "small" {
		size = workload.SizeSmall
	}

	run, err := fpspy.Run(w.Build(size), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeAggregate, ShadowPrec: prec},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	rep := run.RootCause(prec)
	if rep == nil {
		fmt.Printf("\nroot cause (%s, %s): no shadow-executed FP sites\n", name, sizeName)
		return true
	}

	fmt.Printf("\nroot cause (%s, %s) @ %d-bit shadow: %d sites, %d ops, %.6g ulps introduced, 99%% of error in top %d, max divergence %d ulps\n",
		name, sizeName, rep.Prec, len(rep.Sites), rep.TotalOps,
		rep.TotalLocalUlps, rep.Sites99, rep.MaxUlps)
	fmt.Printf("  %4s  %-12s %-8s %10s %10s  %12s %12s %8s\n",
		"rank", "addr", "op", "count", "diverged", "local-ulps", "prop-ulps", "max-ulps")
	for i := range rep.Sites {
		s := &rep.Sites[i]
		if top > 0 && i >= top {
			fmt.Printf("  ... %d more sites\n", len(rep.Sites)-i)
			break
		}
		fmt.Printf("  %4d  %#-12x %-8s %10d %10d  %12.4g %12.4g %8d\n",
			i+1, s.Addr, s.Op, s.Count, s.Diverged, s.LocalUlps, s.PropUlps, s.MaxUlps)
	}

	// Trace consistency: a site that introduces local error rounded, so
	// it must appear in an unsampled individual-mode trace with Inexact
	// raised. (The converse does not hold — unsupported forms and dirty
	// rounding environments trace without being shadow-attributed.)
	ok := true
	tr, err := fpspy.Run(w.Build(size), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, ExceptList: fpspy.AllEvents},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	recs, err := tr.Records()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	inexact := map[uint64]bool{}
	for i := range recs {
		if recs[i].Raised&softfloat.FlagInexact != 0 {
			inexact[recs[i].Rip] = true
		}
	}
	checked := 0
	for i := range rep.Sites {
		s := &rep.Sites[i]
		if s.LocalUlps <= 0 {
			continue
		}
		checked++
		if !inexact[s.Addr] {
			fmt.Fprintf(os.Stderr, "fpanalyze: ROOTCAUSE INCONSISTENT WITH TRACE: site %#x (%s) charged %.4g local ulps but never raised Inexact dynamically\n",
				s.Addr, s.Op, s.LocalUlps)
			ok = false
		}
	}
	if ok {
		fmt.Printf("  consistency: all %d error-introducing sites raised Inexact in the dynamic trace (%d records)\n",
			checked, len(recs))
	}

	if mitPrec > 0 {
		_, stats, err := fpspy.RunMitigated(w.Build(size), mitPrec, fpspy.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpanalyze:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  unmitigated vs mitigated (adaptive precision p=%d):\n", mitPrec)
		fmt.Printf("    %-24s %14s %14s\n", "", "unmitigated", "mitigated")
		fmt.Printf("    %-24s %14.6g %14s\n", "introduced error (ulps)", rep.TotalLocalUlps, "(shadowed out)")
		fmt.Printf("    %-24s %14d %14d\n", "rounding ops", rep.TotalOps, stats.Emulated)
		fmt.Printf("    %-24s %14s %14d\n", "results improved", "-", stats.Improved)
	}
	return ok
}
