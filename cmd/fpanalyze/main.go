// Command fpanalyze runs the paper's trace analyses over binary trace
// files: rank-popularity by instruction form and by address (with
// 99%-coverage statistics), and event-rate time series.
//
// Usage:
//
//	fpanalyze [-forms] [-addrs] [-rate BIN_US] <file.fpemon>...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/study"
	"repro/internal/trace"
)

func main() {
	forms := flag.Bool("forms", true, "rank instruction forms")
	addrs := flag.Bool("addrs", true, "rank instruction addresses")
	rateBin := flag.Float64("rate", 0, "emit an events/s time series with this bin size in microseconds")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fpanalyze [-forms] [-addrs] [-rate BIN_US] <file.fpemon>...")
		os.Exit(2)
	}

	var recs []trace.Record
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpanalyze:", err)
			os.Exit(1)
		}
		rs, err := trace.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpanalyze: %s: %v\n", path, err)
			os.Exit(1)
		}
		recs = append(recs, rs...)
	}
	first, last := analysis.Span(recs)
	fmt.Printf("%d records over %d threads spanning %.3fms\n",
		len(recs), len(analysis.ByThread(recs)),
		float64(last-first)/study.ClockHz*1e3)

	fmt.Println("\nevents by class:")
	for _, ec := range analysis.CountByEvent(recs) {
		fmt.Printf("  %-6v %d\n", ec.Event, ec.Count)
	}

	if *forms {
		ranks := analysis.RankByForm(recs)
		fmt.Printf("\ninstruction forms: %d total, %d cover 99%% of events\n",
			len(ranks), analysis.CoverageCount(ranks, 0.99))
		for _, e := range ranks {
			fmt.Printf("  %-12s %d\n", e.Key, e.Count)
		}
	}
	if *addrs {
		ranks := analysis.RankByAddress(recs)
		fmt.Printf("\ninstruction addresses: %d sites, %d cover 99%% of events\n",
			len(ranks), analysis.CoverageCount(ranks, 0.99))
		limit := 20
		if len(ranks) < limit {
			limit = len(ranks)
		}
		for _, e := range ranks[:limit] {
			fmt.Printf("  %-12s %d\n", e.Key, e.Count)
		}
		if len(ranks) > limit {
			fmt.Printf("  ... %d more\n", len(ranks)-limit)
		}
	}
	if *rateBin > 0 {
		pts := analysis.RateSeries(recs, *rateBin*1e-6, study.ClockHz)
		fmt.Printf("\nevent rate (%gus bins):\n", *rateBin)
		for _, p := range pts {
			fmt.Printf("  %10.2fus %12.0f events/s\n", p.TimeSec*1e6, p.EventsPerSec)
		}
	}
}
