// Command fpanalyze runs the paper's trace analyses over binary trace
// files: rank-popularity by instruction form and by address (with
// 99%-coverage statistics), and event-rate time series. With -log it also
// reports FPSpy's robustness monitor log: degradations, typed abort
// reasons, and how hard the application fought for FPSpy's signals.
//
// Usage:
//
//	fpanalyze [-forms] [-addrs] [-rate BIN_US] [-log FILE.fplog]
//	          [-absint WORKLOAD [-size small|large]] [-accumtree]
//	          [-rootcause WORKLOAD [-rcprec 113] [-rcmitprec 113] [-rctop 20]]
//	          [<file.fpemon>...]
//
// With -rootcause the named workload runs in-process under the
// shadow-precision channel (FPE_SHADOW): every FP instruction is
// recomputed at -rcprec mantissa bits, sites are ranked by the rounding
// error they introduce, the attribution is cross-checked against an
// individual-mode dynamic trace (an inconsistency fails the run), and
// the adaptive-precision mitigated leg at -rcmitprec renders the
// unmitigated-vs-mitigated comparison.
//
// With -absint the per-address rank table is cross-referenced against
// the abstract interpreter's static verdicts for the named workload (the
// static counterpart of the paper's Figure 19), and any dynamically
// raised condition at a statically never-trap site fails the run.
//
// With -accumtree the trace is treated as an FPRev-style probe run
// (fpstudy -probetraces): the per-trial exception counts are decoded
// from the self-describing report gadget and the guest's accumulation
// tree is reconstructed, printed in canonical form alongside its
// fingerprint. Traces that do not carry a valid probe protocol fail
// the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/study"
	"repro/internal/trace"
)

func main() {
	forms := flag.Bool("forms", true, "rank instruction forms")
	addrs := flag.Bool("addrs", true, "rank instruction addresses")
	rateBin := flag.Float64("rate", 0, "emit an events/s time series with this bin size in microseconds")
	logPath := flag.String("log", "", "also report a robustness monitor log (.fplog)")
	absintW := flag.String("absint", "", "cross-reference the address ranks against static verdicts for this workload")
	absintSize := flag.String("size", "large", "problem size for -absint: small or large")
	accumTree := flag.Bool("accumtree", false, "reconstruct an FPRev-style probe's accumulation tree from the trace")
	rootCauseW := flag.String("rootcause", "", "run this workload under the shadow-precision channel and rank sites by introduced rounding error")
	rcPrec := flag.Uint64("rcprec", 113, "shadow precision in mantissa bits (with -rootcause)")
	rcMitPrec := flag.Uint("rcmitprec", 113, "adaptive-mitigation precision for the comparison figure (with -rootcause; 0 skips)")
	rcTop := flag.Int("rctop", 20, "sites to print (with -rootcause; 0 = all)")
	pprofAddr := flag.String("pprof", "", "serve pprof on this address while analyzing")
	flag.Parse()
	if *pprofAddr != "" {
		srv, err := obs.Serve(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpanalyze:", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	if *rootCauseW != "" && flag.NArg() == 0 {
		if *logPath != "" {
			reportMonitorLog(*logPath)
		}
		if !reportRootCause(*rootCauseW, *absintSize, *rcPrec, *rcMitPrec, *rcTop) {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 && *logPath == "" {
		fmt.Fprintln(os.Stderr, "usage: fpanalyze [-forms] [-addrs] [-rate BIN_US] [-log FILE.fplog] [-rootcause WORKLOAD] [<file.fpemon>...]")
		os.Exit(2)
	}

	if *logPath != "" {
		reportMonitorLog(*logPath)
		if flag.NArg() == 0 {
			return
		}
		fmt.Println()
	}

	var recs []trace.Record
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpanalyze:", err)
			os.Exit(1)
		}
		rs, err := trace.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpanalyze: %s: %v\n", path, err)
			os.Exit(1)
		}
		recs = append(recs, rs...)
	}
	first, last := analysis.Span(recs)
	fmt.Printf("%d records over %d threads spanning %.3fms\n",
		len(recs), len(analysis.ByThread(recs)),
		float64(last-first)/study.ClockHz*1e3)

	fmt.Println("\nevents by class:")
	for _, ec := range analysis.CountByEvent(recs) {
		fmt.Printf("  %-6v %d\n", ec.Event, ec.Count)
	}

	if *forms {
		ranks := analysis.RankByForm(recs)
		fmt.Printf("\ninstruction forms: %d total, %d cover 99%% of events\n",
			len(ranks), analysis.CoverageCount(ranks, 0.99))
		for _, e := range ranks {
			fmt.Printf("  %-12s %d\n", e.Key, e.Count)
		}
	}
	if *addrs {
		ranks := analysis.RankByAddress(recs)
		fmt.Printf("\ninstruction addresses: %d sites, %d cover 99%% of events\n",
			len(ranks), analysis.CoverageCount(ranks, 0.99))
		limit := 20
		if len(ranks) < limit {
			limit = len(ranks)
		}
		for _, e := range ranks[:limit] {
			fmt.Printf("  %-12s %d\n", e.Key, e.Count)
		}
		if len(ranks) > limit {
			fmt.Printf("  ... %d more\n", len(ranks)-limit)
		}
	}
	if *rateBin > 0 {
		pts := analysis.RateSeries(recs, *rateBin*1e-6, study.ClockHz)
		fmt.Printf("\nevent rate (%gus bins):\n", *rateBin)
		for _, p := range pts {
			fmt.Printf("  %10.2fus %12.0f events/s\n", p.TimeSec*1e6, p.EventsPerSec)
		}
	}
	if *absintW != "" {
		if !reportAbsint(*absintW, *absintSize, recs) {
			os.Exit(1)
		}
	}
	if *accumTree {
		if !reportAccumTree(recs) {
			os.Exit(1)
		}
	}
	if *rootCauseW != "" {
		if !reportRootCause(*rootCauseW, *absintSize, *rcPrec, *rcMitPrec, *rcTop) {
			os.Exit(1)
		}
	}
}

// reportAccumTree reconstructs the accumulation tree an FPRev-style
// probe trace encodes and prints its canonical form and fingerprint.
func reportAccumTree(recs []trace.Record) bool {
	fs, err := analysis.ProbeTrialCounts(recs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		return false
	}
	tree, err := analysis.RecoverProbeTree(recs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		return false
	}
	fmt.Printf("\naccumulation tree: n=%d leaves over %d trials\n", tree.LeafCount(), len(fs))
	fmt.Printf("  canonical:   %s\n", tree.Canonical())
	fmt.Printf("  fingerprint: %s\n", tree.Fingerprint())
	return true
}

// reportMonitorLog summarizes a robustness monitor log: every
// degradation with its typed reason, plus signal-fight totals.
func reportMonitorLog(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		os.Exit(1)
	}
	evs, err := trace.ParseMonitorLog(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpanalyze: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("monitor log: %d events\n", len(evs))
	fights := map[string]uint64{}
	for _, e := range evs {
		switch e.Kind {
		case trace.EventAbort:
			fmt.Printf("  pid %d: aborted (%s -> %s) at t=%d: reason=%s\n",
				e.PID, e.From, e.To, e.Time, e.Reason)
		case trace.EventDemote:
			fmt.Printf("  pid %d: demoted (%s -> %s) at t=%d: reason=%s\n",
				e.PID, e.From, e.To, e.Time, e.Reason)
		case trace.EventReassert:
			fmt.Printf("  pid %d tid %d: re-asserted masks at t=%d (%s)\n",
				e.PID, e.TID, e.Time, e.Reason)
		case trace.EventSignalFight:
			fights[e.Signal]++
		}
	}
	sigs := make([]string, 0, len(fights))
	for sig := range fights {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		fmt.Printf("  app fought for %s %d times (absorbed)\n", sig, fights[sig])
	}
}
