// Package fpspy is a faithful reproduction, in pure Go, of FPSpy — the
// tool from "Spying on the Floating Point Behavior of Existing,
// Unmodified Scientific Applications" (Dinda, Bernat, Hetland; HPDC
// 2020) — together with the entire machine and OS substrate it needs.
//
// FPSpy observes the IEEE 754 condition codes that x64 hardware sets as a
// zero-cost side effect of every floating point instruction. In
// aggregate mode it reads the sticky codes once per thread lifetime; in
// individual mode it unmasks exceptions and captures a trace record for
// every faulting instruction using a classic user-level trap-and-emulate
// protocol (SIGFPE, then a single-step SIGTRAP). Because the Go runtime
// owns real signal delivery, this reproduction runs FPSpy underneath
// guest binaries on a simulated x64-subset machine with a bit-exact
// software FPU and a Linux-like kernel (signals, threads, LD_PRELOAD
// interposition) — the protocol, configuration surface, overheads, and
// failure modes are the paper's.
//
// Quick start:
//
//	prog := fpspy.NewProgram("demo")
//	// ... emit instructions (see examples/quickstart) ...
//	res, err := fpspy.Run(prog.Build(), fpspy.Options{
//		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
//	})
//	for _, rec := range res.MustRecords() { ... }
package fpspy

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/softfloat"
	"repro/internal/trace"
)

// Re-exported configuration types. Config is FPSpy's entire interface,
// mirroring the paper's environment variables.
type (
	// Config selects mode, filtering, and sampling (Figure 2's FPE_*).
	Config = core.Config
	// Mode is aggregate vs individual operation.
	Mode = core.Mode
	// Record is one individual-mode trace record.
	Record = trace.Record
	// Aggregate is one aggregate-mode per-thread record.
	Aggregate = trace.Aggregate
	// Flags is a set of IEEE 754 condition codes in x64 MXCSR layout.
	Flags = softfloat.Flags
	// Program is an assembled guest program.
	Program = isa.Program
	// Builder assembles guest programs.
	Builder = isa.Builder
	// Store collects traces across processes and threads.
	Store = core.Store
	// ThreadKey identifies one traced thread.
	ThreadKey = core.ThreadKey
	// MonitorEvent is one entry of FPSpy's robustness monitor log.
	MonitorEvent = trace.MonitorEvent
	// DegradeState is FPSpy's degradation level.
	DegradeState = core.DegradeState
	// AbortReason types why FPSpy degraded.
	AbortReason = core.AbortReason
	// RootCauseReport ranks FP instruction sites by introduced rounding
	// error (from a run with Config.ShadowPrec set).
	RootCauseReport = analysis.RootCauseReport
	// RootCauseSite is one attributed instruction site.
	RootCauseSite = analysis.RootCauseSite
)

// NewStore creates an empty trace store for Options.Store.
func NewStore() *Store { return core.NewStore() }

// NewStoreWithSink creates a store whose per-thread trace bytes go to
// writers produced by sink (e.g. to model failing trace files).
func NewStoreWithSink(sink func(ThreadKey) io.Writer) *Store {
	return core.NewStoreWithSink(sink)
}

// Re-exported mode and flag constants.
const (
	ModeAggregate  = core.ModeAggregate
	ModeIndividual = core.ModeIndividual

	FlagInvalid      = softfloat.FlagInvalid
	FlagDenormal     = softfloat.FlagDenormal
	FlagDivideByZero = softfloat.FlagDivideByZero
	FlagOverflow     = softfloat.FlagOverflow
	FlagUnderflow    = softfloat.FlagUnderflow
	FlagInexact      = softfloat.FlagInexact
	AllEvents        = core.AllEvents

	// MinShadowPrec/MaxShadowPrec bound Config.ShadowPrec (FPE_SHADOW).
	MinShadowPrec = core.MinShadowPrec
	MaxShadowPrec = core.MaxShadowPrec
)

// Re-exported degradation states and typed abort reasons.
const (
	StateIndividual = core.StateIndividual
	StateAggregate  = core.StateAggregate
	StateDetached   = core.StateDetached

	AbortSignalConflict = core.AbortSignalConflict
	AbortFEAccess       = core.AbortFEAccess
	AbortMXCSRStomp     = core.AbortMXCSRStomp
	AbortForeignTrap    = core.AbortForeignTrap
	AbortTrapStorm      = core.AbortTrapStorm
)

// NewProgram returns a builder for a guest program.
func NewProgram(name string) *Builder { return isa.NewBuilder(name) }

// Options configures a Run.
type Options struct {
	// Config is FPSpy's configuration. Leave Disable set and Mode zero
	// to run the program without FPSpy attached (the baseline).
	Config Config
	// NoSpy runs without FPSpy in LD_PRELOAD at all.
	NoSpy bool
	// MemBytes sizes guest memory (default 16 MiB).
	MemBytes int
	// MaxSteps bounds execution (default 500M instructions).
	MaxSteps uint64
	// Env adds extra environment variables to the guest.
	Env map[string]string
	// CostModel overrides the kernel cycle cost model.
	CostModel *kernel.CostModel
	// NoFastPath forces the precise single-step engine, as the
	// FPE_NOFASTPATH ablation does (the reproducibility suite runs both
	// engines and requires identical guest-visible behavior).
	NoFastPath bool
	// Inject, when non-nil, perturbs kernel scheduling (seeded shuffle,
	// quantum jitter, signal delay) without changing guest semantics —
	// the adversarial-schedule axis of the reproducibility suite.
	Inject *kernel.Inject
	// Store, when non-nil, receives the traces instead of a fresh
	// in-memory store (e.g. one built with NewStoreWithSink to model
	// failing trace files).
	Store *Store
	// Obs, when non-nil, receives observability data (metrics and trace
	// events) from the kernel, machine, and spy. Leave nil
	// (obs.Disabled) for a run with instrumentation compiled out; the
	// simulated execution is bit-identical either way.
	Obs *obs.Metrics
}

// Result is the outcome of running a program under (or without) FPSpy.
type Result struct {
	// Store holds every trace FPSpy produced.
	Store *Store
	// Steps is the total retired instruction count.
	Steps uint64
	// UserCycles and SysCycles aggregate over all tasks of the initial
	// process.
	UserCycles, SysCycles uint64
	// WallCycles is the kernel's wall clock at completion.
	WallCycles uint64
	// ExitCode is the initial process's exit status.
	ExitCode int
	// Kern exposes the kernel for advanced inspection.
	Kern *kernel.Kernel
	// Proc is the initial process.
	Proc *kernel.Process
	// TraceErr aggregates trace flush failures observed at thread
	// teardown; nil when every trace reached its destination.
	TraceErr error
}

// Run executes prog to completion under the simulated kernel, with FPSpy
// attached via LD_PRELOAD unless opts.NoSpy is set.
func Run(prog *Program, opts Options) (*Result, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 16 << 20
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 500_000_000
	}
	k := kernel.New()
	if opts.CostModel != nil {
		k.Cost = *opts.CostModel
	}
	k.NoFastPath = opts.NoFastPath
	k.Inject = opts.Inject
	k.Obs = opts.Obs
	store := opts.Store
	if store == nil {
		store = core.NewStore()
	}
	env := map[string]string{}
	for key, v := range opts.Env {
		env[key] = v
	}
	if !opts.NoSpy {
		k.RegisterPreload(core.PreloadName, core.FactoryObs(store, opts.Obs))
		for key, v := range opts.Config.EnvVars() {
			env[key] = v
		}
	}
	p, err := k.Spawn(prog, opts.MemBytes, env)
	if err != nil {
		return nil, err
	}
	steps := k.Run(opts.MaxSteps)
	if !p.Exited {
		return nil, fmt.Errorf("fpspy: %s did not finish within %d steps", prog.Name, opts.MaxSteps)
	}
	user, sys := p.ProcessTimes()
	return &Result{
		Store:      store,
		Steps:      steps,
		UserCycles: user,
		SysCycles:  sys,
		WallCycles: k.Cycles,
		ExitCode:   p.ExitCode,
		Kern:       k,
		Proc:       p,
		TraceErr:   errors.Join(store.FlushErrs()...),
	}, nil
}

// RootCause assembles the ranked shadow attribution report from a run
// with Config.ShadowPrec > 0, labeled with that precision. It returns
// nil when no site was shadow-executed (or shadowing was off).
func (r *Result) RootCause(prec uint64) *RootCauseReport {
	sites := r.Store.ShadowSites()
	if len(sites) == 0 {
		return nil
	}
	return analysis.BuildRootCause(prec, sites)
}

// MitigationStats aggregates what adaptive precision did during a
// mitigated run.
type MitigationStats = adaptive.Stats

// RunMitigated executes prog with the Section 6 adaptive-precision
// object in LD_PRELOAD instead of FPSpy: scalar binary64 rounding
// instructions are trap-and-emulated against a software FPU of the
// given mantissa precision, with results written back through the
// signal context.
func RunMitigated(prog *Program, prec uint, opts Options) (*Result, *MitigationStats, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 16 << 20
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 500_000_000
	}
	k := kernel.New()
	if opts.CostModel != nil {
		k.Cost = *opts.CostModel
	}
	stats := &MitigationStats{}
	k.RegisterPreload(adaptive.PreloadName, adaptive.Factory(prec, stats))
	env := map[string]string{"LD_PRELOAD": adaptive.PreloadName}
	for key, v := range opts.Env {
		env[key] = v
	}
	p, err := k.Spawn(prog, opts.MemBytes, env)
	if err != nil {
		return nil, nil, err
	}
	steps := k.Run(opts.MaxSteps)
	if !p.Exited {
		return nil, nil, fmt.Errorf("fpspy: %s did not finish within %d steps", prog.Name, opts.MaxSteps)
	}
	user, sys := p.ProcessTimes()
	return &Result{
		Store:      core.NewStore(),
		Steps:      steps,
		UserCycles: user,
		SysCycles:  sys,
		WallCycles: k.Cycles,
		ExitCode:   p.ExitCode,
		Kern:       k,
		Proc:       p,
	}, stats, nil
}

// Aggregates returns the aggregate-mode records.
func (r *Result) Aggregates() []Aggregate { return r.Store.Aggregates() }

// Records returns all individual-mode records across threads.
func (r *Result) Records() ([]Record, error) { return r.Store.AllRecords() }

// MustRecords is Records, panicking on decode failure (for examples).
func (r *Result) MustRecords() []Record {
	recs, err := r.Records()
	if err != nil {
		panic(err)
	}
	return recs
}

// EventSet ORs all condition codes observed, from whichever mode ran.
func (r *Result) EventSet() Flags {
	var f Flags
	for _, a := range r.Store.Aggregates() {
		f |= a.Flags
	}
	recs, err := r.Records()
	if err == nil {
		for i := range recs {
			f |= recs[i].Raised
		}
	}
	return f
}

// Mnemonic returns the instruction mnemonic for a trace record (the
// paper's analysis scripts decode instruction bytes; the simulator keeps
// the opcode in the record).
func Mnemonic(rec *Record) string {
	return isa.Opcode(rec.Opcode).String()
}
