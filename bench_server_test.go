package fpspy_test

// Service-path benchmarks: the full HTTP round trip through fpspyd's
// submit/result API, measured cold (every submission is a distinct
// content address and runs a pass) and cached (every submission after
// the first attaches to the settled cache entry).
//
//	go test -run '^$' -bench BenchmarkServerSubmit -benchtime 5x -benchmem .
//
// Reference numbers live in BENCH_pr5.json.

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// benchServerJob captures a small faulting guest as a submission clone.
func benchServerJob(name string, env map[string]string) *jobs.Job {
	b := fpspy.NewProgram(name)
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
	for i := 0; i < 8; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
	b.Hlt()
	return jobs.Capture(name, b.Build(), env, 4<<20)
}

func benchDaemon(b *testing.B) *client.Client {
	b.Helper()
	srv, err := server.New(server.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(func() {
		ts.Close()
		srv.Shutdown() //nolint:errcheck // bench teardown
	})
	return client.New(ts.URL, "bench")
}

// BenchmarkServerSubmit measures the cold path: each iteration submits
// a clone with a unique environment (a fresh content address), so every
// op is decode + hash + queue + one full monitored pass + NDJSON result
// stream over HTTP.
func BenchmarkServerSubmit(b *testing.B) {
	c := benchDaemon(b)
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := benchServerJob("bench", map[string]string{"ITER": fmt.Sprint(i)})
		resp, err := c.Submit(job, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Result(resp.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkServerSubmitCached measures the warm path: the first
// submission runs the pass, every timed iteration resubmits the
// identical clone and streams the cached result. This is the per-client
// cost when the content-addressed cache absorbs the work.
func BenchmarkServerSubmitCached(b *testing.B) {
	c := benchDaemon(b)
	cfg := fpspy.Config{Mode: fpspy.ModeIndividual}
	job := benchServerJob("bench-cached", nil)
	resp, err := c.Submit(job, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Result(resp.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Submit(job, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warm resubmission missed the cache")
		}
		if _, err := c.Result(resp.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}
