package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a throwaway module and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module testmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runChecks(t *testing.T, root string, pkgs ...string) []diagnostic {
	t.Helper()
	l := newLoader(root, "testmod")
	var diags []diagnostic
	for _, path := range pkgs {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags = append(diags, checkPackage(l.fset, p)...)
	}
	return diags
}

func TestNilReceiverCheck(t *testing.T) {
	root := writeTree(t, map[string]string{
		"metrics/metrics.go": `package metrics

type SpyMetrics struct {
	Traps uint64
	tab   []uint64
}

// guarded: top-level nil guard before any deref.
func (m *SpyMetrics) Good() uint64 {
	if m == nil {
		return 0
	}
	return m.Traps
}

// guarded via ||-chain with the receiver leftmost.
func (m *SpyMetrics) GoodOr(on bool) uint64 {
	if m == nil || !on {
		return 0
	}
	return m.Traps
}

// containment: deref only inside an if m != nil block.
func (m *SpyMetrics) GoodContained() uint64 {
	var total uint64
	if m != nil {
		total = m.Traps
	}
	return total
}

// reading the pointer value itself is not a deref.
func (m *SpyMetrics) Enabled() bool { return m != nil }

// BadField derefs a field with no guard.
func (m *SpyMetrics) BadField() uint64 { return m.Traps }

// BadIndex indexes through the receiver before the guard.
func (m *SpyMetrics) BadIndex(i int) uint64 {
	v := m.tab[i]
	if m == nil {
		return 0
	}
	return v
}

// Unmonitored types are ignored even when unsafe.
type counter struct{ n uint64 }

func (c *counter) Bump() { c.n++ }
`,
	})
	diags := runChecks(t, root, "testmod/metrics")
	var got []string
	for _, d := range diags {
		if d.check != "nilreceiver" {
			t.Errorf("unexpected check %q: %s", d.check, d.msg)
		}
		got = append(got, d.msg)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(got), got)
	}
	for i, want := range []string{"BadField", "BadIndex"} {
		if !strings.Contains(got[i], want) {
			t.Errorf("diagnostic %d = %q, want mention of %s", i, got[i], want)
		}
	}
}

func TestExhaustiveCheck(t *testing.T) {
	root := writeTree(t, map[string]string{
		"enums/enums.go": `package enums

type Reason string

const (
	ReasonA Reason = "a"
	ReasonB Reason = "b"
	ReasonC Reason = "c"
)
`,
		"use/use.go": `package use

import "testmod/enums"

func Full(r enums.Reason) int {
	switch r {
	case enums.ReasonA:
		return 1
	case enums.ReasonB, enums.ReasonC:
		return 2
	}
	return 0
}

func Defaulted(r enums.Reason) int {
	switch r {
	case enums.ReasonA:
		return 1
	default:
		return 0
	}
}

func Missing(r enums.Reason) int {
	switch r {
	case enums.ReasonA:
		return 1
	case enums.ReasonB:
		return 2
	}
	return 0
}

// Switches over other types are never flagged.
func Other(s string) int {
	switch s {
	case "x":
		return 1
	}
	return 0
}
`,
	})

	enumTypes["testmod/enums.Reason"] = true
	defer delete(enumTypes, "testmod/enums.Reason")

	diags := runChecks(t, root, "testmod/enums", "testmod/use")
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.check != "exhaustive" {
		t.Fatalf("check = %q, want exhaustive", d.check)
	}
	if !strings.Contains(d.msg, "ReasonC") || strings.Contains(d.msg, "ReasonB") {
		t.Errorf("diagnostic should name only ReasonC: %s", d.msg)
	}
}

func TestModulePath(t *testing.T) {
	root := writeTree(t, map[string]string{})
	mod, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod != "testmod" {
		t.Fatalf("modulePath = %q, want testmod", mod)
	}
}
