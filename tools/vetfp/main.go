// Command vetfp is the repository's custom static checker. It enforces
// two invariants the standard toolchain cannot express:
//
//  1. nil-receiver safety: every pointer-receiver method on a type whose
//     name ends in "Metrics" must be safe to call on a nil receiver —
//     the observability layer's zero-overhead-when-off contract (a nil
//     *obs.Metrics is the disabled instance, and every accessor must
//     tolerate it). A method may dereference its receiver only after an
//     `if recv == nil { return ... }` guard or inside an
//     `if recv != nil { ... }` block.
//
//  2. exhaustive switches: every switch over core.AbortReason or
//     trace.MonitorEventKind must either cover all declared constants of
//     the type or carry a default clause, so adding an abort reason or a
//     monitor event kind cannot silently fall through existing handling.
//
// The tool is deliberately standard-library only (x/tools is not
// vendored), so instead of speaking `go vet -vettool`'s unitchecker
// protocol it loads and type-checks the module itself: repro packages
// from source, dependencies through the gc export data that `go list
// -export` materializes in the build cache.
//
// Usage:
//
//	go run ./tools/vetfp ./...
//
// Exit status 1 when any diagnostic fires.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath reads the module path from go.mod in root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// pkg is one loaded, type-checked package plus everything the checks
// need to inspect it.
type pkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader type-checks module packages from source and resolves external
// imports (std and toolchain) through gc export data located with
// `go list -export`. It implements types.Importer.
type loader struct {
	fset *token.FileSet
	mod  string
	root string
	ext  types.Importer
	pkgs map[string]*pkg
	done map[string]*types.Package
}

func newLoader(root, mod string) *loader {
	l := &loader{
		fset: token.NewFileSet(),
		mod:  mod,
		root: root,
		pkgs: map[string]*pkg{},
		done: map[string]*types.Package{},
	}
	l.ext = importer.ForCompiler(l.fset, "gc", lookupExport)
	return l
}

// lookupExport finds a package's gc export data via the go command.
// `go list -export` compiles the package into the build cache if needed
// and prints the export file path, so this works in a clean checkout
// with no network access.
func lookupExport(path string) (io.ReadCloser, error) {
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %w", path, err)
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(file)
}

// Import implements types.Importer over both worlds.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if done := l.done[path]; done != nil {
		return done, nil
	}
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	tp, err := l.ext.Import(path)
	if err != nil {
		return nil, err
	}
	l.done[path] = tp
	return tp, nil
}

// load parses and type-checks one module package from source. Test
// files are excluded: the invariants under check are production-code
// contracts, and external-test packages would need a second pass.
func (l *loader) load(path string) (*pkg, error) {
	if p := l.pkgs[path]; p != nil {
		return p, nil
	}
	dir := l.root
	if path != l.mod {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.mod+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &pkg{path: path, files: files, types: tp, info: info}
	l.pkgs[path] = p
	l.done[path] = tp
	return p, nil
}

// packageDirs walks the module for package directories, skipping
// testdata, hidden directories, and the tools themselves (vetfp checks
// the production tree; checking the checker is the test's job).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "tools") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				return nil
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func main() {
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetfp:", err)
		os.Exit(2)
	}
	mod, err := modulePath(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetfp:", err)
		os.Exit(2)
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetfp:", err)
		os.Exit(2)
	}

	l := newLoader(root, mod)
	var diags []diagnostic
	for _, dir := range dirs {
		path := mod
		if dir != root {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vetfp:", err)
				os.Exit(2)
			}
			path = mod + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vetfp: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, checkPackage(l.fset, p)...)
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].pos.String() < diags[j].pos.String() })
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.pos, d.check, d.msg)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
