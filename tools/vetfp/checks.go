package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// diagnostic is one finding: position, which check fired, and the
// message. Output format matches go vet ("file:line:col: message").
type diagnostic struct {
	pos   token.Position
	check string
	msg   string
}

// enumTypes are the named types whose switches must be exhaustive,
// keyed by "<pkg-path>.<type-name>". The values of each enum are every
// package-level constant of that exact type declared in the defining
// package.
var enumTypes = map[string]bool{
	"repro/internal/core.AbortReason":       true,
	"repro/internal/trace.MonitorEventKind": true,
	"repro/internal/machine.SBKind":         true,
	"repro/internal/shadow.SampleClass":     true,
}

func checkPackage(fset *token.FileSet, p *pkg) []diagnostic {
	var diags []diagnostic
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv != nil && fd.Body != nil {
				diags = append(diags, checkNilReceiver(fset, p, fd)...)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok {
				diags = append(diags, checkExhaustive(fset, p, sw)...)
			}
			return true
		})
	}
	return diags
}

// --- check 1: nil-receiver safety of *Metrics methods -------------------

// metricsReceiver reports whether fd is a pointer-receiver method on a
// named type whose name ends in "Metrics", and returns the receiver's
// identifier (nil for a blank/anonymous receiver, which is trivially
// safe).
func metricsReceiver(p *pkg, fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return nil
	}
	base, ok := star.X.(*ast.Ident)
	if !ok || !strings.HasSuffix(base.Name, "Metrics") {
		return nil
	}
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return nil
	}
	return field.Names[0]
}

// checkNilReceiver verifies the method body cannot dereference a nil
// receiver before guarding. The analysis is a linear scan of the
// top-level statements: a statement that dereferences the receiver
// outside an `if recv != nil` block before an `if recv == nil { return }`
// guard is a diagnostic. This is deliberately syntactic — the repo's
// accessors all follow one of the two guard shapes — and errs toward
// reporting, since a false positive here means the guard style drifted.
func checkNilReceiver(fset *token.FileSet, p *pkg, fd *ast.FuncDecl) []diagnostic {
	recv := metricsReceiver(p, fd)
	if recv == nil {
		return nil
	}
	obj := p.info.Defs[recv]
	if obj == nil {
		return nil
	}
	for _, stmt := range fd.Body.List {
		if isNilGuard(stmt, p, obj) {
			return nil // everything below runs with recv != nil
		}
		if pos, deref := firstUnguardedDeref(stmt, p, obj); deref {
			return []diagnostic{{
				pos:   fset.Position(pos),
				check: "nilreceiver",
				msg: fmt.Sprintf("method (*%s).%s dereferences receiver %q before a nil guard; *Metrics methods must be nil-receiver-safe",
					receiverTypeName(fd), fd.Name.Name, obj.Name()),
			}}
		}
	}
	return nil
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if star, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}

// isNilGuard recognizes `if recv == nil { ... }` whose body terminates
// (return or panic), including as the leftmost operand of an ||-chain:
// `if recv == nil || other { return }` guards too.
func isNilGuard(stmt ast.Stmt, p *pkg, obj types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond := ifs.Cond
	for {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LOR {
			cond = bin.X
			continue
		}
		if bin.Op != token.EQL {
			return false
		}
		if !(isRecv(bin.X, p, obj) && isNil(bin.Y, p) || isRecv(bin.Y, p, obj) && isNil(bin.X, p)) {
			return false
		}
		break
	}
	return bodyTerminates(ifs.Body)
}

func bodyTerminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func isRecv(e ast.Expr, p *pkg, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.info.Uses[id] == obj
}

func isNil(e ast.Expr, p *pkg) bool {
	tv, ok := p.info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// firstUnguardedDeref finds a receiver dereference in stmt that is not
// inside an `if recv != nil` block. Reading the receiver's value (e.g.
// `return m != nil` or passing it along) is fine; selecting a field,
// indexing, or explicit * is not.
func firstUnguardedDeref(stmt ast.Stmt, p *pkg, obj types.Object) (token.Pos, bool) {
	var pos token.Pos
	var found bool
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.IfStmt:
			if isNotNilGuard(x.Cond, p, obj) {
				// The guarded body may deref freely; init/else may not.
				if x.Init != nil {
					ast.Inspect(x.Init, visit)
				}
				if x.Else != nil {
					ast.Inspect(x.Else, visit)
				}
				return false
			}
		case *ast.SelectorExpr:
			if isRecv(x.X, p, obj) && derefSelector(x, p) {
				pos, found = x.Pos(), true
				return false
			}
		case *ast.StarExpr:
			if isRecv(x.X, p, obj) {
				pos, found = x.Pos(), true
				return false
			}
		case *ast.IndexExpr:
			if isRecv(x.X, p, obj) {
				pos, found = x.Pos(), true
				return false
			}
		}
		return true
	}
	ast.Inspect(stmt, visit)
	return pos, found
}

// isNotNilGuard recognizes `recv != nil` possibly as the leftmost
// operand of an &&-chain.
func isNotNilGuard(cond ast.Expr, p *pkg, obj types.Object) bool {
	for {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if bin.Op == token.LAND {
			cond = bin.X
			continue
		}
		if bin.Op != token.NEQ {
			return false
		}
		return isRecv(bin.X, p, obj) && isNil(bin.Y, p) ||
			isRecv(bin.Y, p, obj) && isNil(bin.X, p)
	}
}

// derefSelector reports whether sel actually loads through the pointer:
// method values on pointer receivers don't (calling them re-enters a
// nil-safe method), field selections do.
func derefSelector(sel *ast.SelectorExpr, p *pkg) bool {
	obj := p.info.Uses[sel.Sel]
	if obj == nil {
		return true // be conservative
	}
	_, isField := obj.(*types.Var)
	return isField
}

// --- check 2: exhaustive switches over monitored enums ------------------

// checkExhaustive fires when a switch's tag is one of the monitored
// enum types, it has no default clause, and some constant of the type
// is not covered by any case expression.
func checkExhaustive(fset *token.FileSet, p *pkg, sw *ast.SwitchStmt) []diagnostic {
	if sw.Tag == nil {
		return nil
	}
	tv, ok := p.info.Types[sw.Tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil
	}
	key := tn.Pkg().Path() + "." + tn.Name()
	if !enumTypes[key] {
		return nil
	}

	want := enumValues(tn)
	covered := map[string]bool{}
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			return nil // default clause: anything uncovered is handled
		}
		for _, e := range cc.List {
			etv, ok := p.info.Types[e]
			if !ok || etv.Value == nil {
				continue
			}
			covered[etv.Value.ExactString()] = true
		}
	}

	var missing []string
	for val, name := range want {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return []diagnostic{{
		pos:   fset.Position(sw.Pos()),
		check: "exhaustive",
		msg: fmt.Sprintf("switch over %s is missing cases %s (add them or a default clause)",
			key, strings.Join(missing, ", ")),
	}}
}

// enumValues collects every package-level constant of exactly the named
// type from its defining package, keyed by exact constant value so
// aliases (two names, one value) count once.
func enumValues(tn *types.TypeName) map[string]string {
	vals := map[string]string{}
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), tn.Type()) {
			vals[c.Val().ExactString()] = c.Name()
		}
	}
	return vals
}
