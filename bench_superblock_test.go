package fpspy_test

import (
	"math"
	"testing"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/softfloat"
)

// buildEmulationProgram returns an emulation-heavy guest shaped like
// the paper's workloads: a long straight-line loop body of scalar
// binary64 arithmetic (the dominant form class in the corpus — Figure
// 17's top forms are scalar SSE) with the address arithmetic real code
// carries, every FP op inexact so nothing is prunable and every retire
// goes through the soft FPU. This is the shape the superblock cache
// targets: after aggregate mode captures the first event and masks,
// the whole run is RunStraight over one hot region, and the cached
// dispatch retires scalar F64 arithmetic through the inline fast lane
// instead of re-classifying the opcode and staging a full 512-bit
// vector per instruction.
func buildEmulationProgram(n int) *fpspy.Program {
	b := fpspy.NewProgram("emu-heavy")
	consts := b.Float64s(0.1, 0.2, 3, 7)
	b.Movi(isa.R4, int64(consts))
	b.Fld(isa.X0, isa.R4, 0)  // 0.1
	b.Fld(isa.X1, isa.R4, 8)  // 0.2
	b.Fld(isa.X7, isa.R4, 16) // 3
	b.Fld(isa.X6, isa.R4, 24) // 7
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, int64(n))
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpADDSD, isa.X2, isa.X0, isa.X1)  // inexact
	b.FP2(isa.OpMULSD, isa.X3, isa.X2, isa.X0)  // inexact
	b.FP2(isa.OpSUBSD, isa.X4, isa.X3, isa.X1)  // inexact
	b.FP2(isa.OpDIVSD, isa.X5, isa.X0, isa.X7)  // 0.1/3: inexact
	b.FP1(isa.OpSQRTSD, isa.X8, isa.X7)         // sqrt(3): inexact
	b.FP2(isa.OpADDSD, isa.X2, isa.X2, isa.X5)  // inexact
	b.FP2(isa.OpMULSD, isa.X9, isa.X8, isa.X6)  // inexact
	b.FP2(isa.OpMINSD, isa.X10, isa.X9, isa.X6) // exact but unprovable
	b.Addi(isa.R5, isa.R5, 8)                   // address arithmetic
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, loop)
	b.Hlt()
	return b.Build()
}

// BenchmarkSuperblock measures the aggregate-mode run of the
// emulation-heavy guest with the superblock trace cache on (default)
// and off (FPE_NOSUPERBLOCK, the ablation). Aggregate mode captures the
// first inexact event and then masks, so virtually the whole run goes
// through RunStraight; the ablation pair isolates what region caching
// saves per retired instruction over the per-Step decode loop. The
// accumulation-order probe suite (internal/study/probe_test.go) pins
// the two engines bit-identical — every probe kernel's recovered tree
// fingerprint is invariant across the superblock ablation (and every
// other engine/schedule axis) — so any gap here is pure dispatch
// overhead.
func BenchmarkSuperblock(b *testing.B) {
	prog := buildEmulationProgram(20000)

	// Sanity: the two engines must agree on the run's observable shape
	// before we time them.
	ref, err := fpspy.Run(prog, fpspy.Options{
		Config:   fpspy.Config{Mode: fpspy.ModeAggregate},
		MemBytes: 2 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	abl, err := fpspy.Run(prog, fpspy.Options{
		Config:   fpspy.Config{Mode: fpspy.ModeAggregate, NoSuperblock: true},
		MemBytes: 2 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	if ref.ExitCode != 0 || abl.ExitCode != 0 || ref.Steps != abl.Steps {
		b.Fatalf("engines disagree: exit %d/%d, steps %d/%d",
			ref.ExitCode, abl.ExitCode, ref.Steps, abl.Steps)
	}

	for _, bc := range []struct {
		name         string
		noSuperblock bool
	}{
		{"cached", false},
		{"nosuperblock", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := fpspy.Run(prog, fpspy.Options{
					Config: fpspy.Config{
						Mode:         fpspy.ModeAggregate,
						NoSuperblock: bc.noSuperblock,
					},
					MemBytes: 2 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ExitCode != 0 {
					b.Fatalf("exit %d", res.ExitCode)
				}
			}
		})
	}
}

// BenchmarkSoftFloatLanes compares per-lane scalar dispatch (what the
// machine's packed path did before lane batching: one exported-function
// call and flag merge per lane) against the lane-sliced kernels, per
// lane width. The win is call and loop overhead amortized across the
// vector — the per-lane rounding work is identical by construction
// (conformance_test pins the lane kernels to the scalar ops bit for
// bit).
func BenchmarkSoftFloatLanes(b *testing.B) {
	env := softfloat.Env{RM: softfloat.RoundNearestEven}

	a64 := make([]uint64, isa.VecWords)
	c64 := make([]uint64, isa.VecWords)
	d64 := make([]uint64, isa.VecWords)
	for i := range a64 {
		a64[i] = math.Float64bits(0.1 + float64(i)*0.3)
		c64[i] = math.Float64bits(0.2 + float64(i)*0.7)
	}
	b.Run("width64/scalar", func(b *testing.B) {
		var fl softfloat.Flags
		for i := 0; i < b.N; i++ {
			for l := range d64 {
				z, f := softfloat.Add64(a64[l], c64[l], env)
				d64[l] = z
				fl |= f
			}
		}
		_ = fl
	})
	b.Run("width64/lanes", func(b *testing.B) {
		var fl softfloat.Flags
		for i := 0; i < b.N; i++ {
			fl |= softfloat.AddLanes64(d64, a64, c64, env)
		}
		_ = fl
	})

	lanes32 := 2 * isa.VecWords
	a32 := make([]uint32, lanes32)
	c32 := make([]uint32, lanes32)
	d32 := make([]uint32, lanes32)
	for i := range a32 {
		a32[i] = math.Float32bits(0.1 + float32(i)*0.3)
		c32[i] = math.Float32bits(0.2 + float32(i)*0.7)
	}
	b.Run("width32/scalar", func(b *testing.B) {
		var fl softfloat.Flags
		for i := 0; i < b.N; i++ {
			for l := range d32 {
				z, f := softfloat.Add32(a32[l], c32[l], env)
				d32[l] = z
				fl |= f
			}
		}
		_ = fl
	})
	b.Run("width32/lanes", func(b *testing.B) {
		var fl softfloat.Flags
		for i := 0; i < b.N; i++ {
			fl |= softfloat.AddLanes32(d32, a32, c32, env)
		}
		_ = fl
	})
}
