package fpspy_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/obs"
)

const flopIters = 10

// flopMask is the write mask used by the masked op below: 5 of 8 lanes
// active, 3 suppressed.
const flopMask = 0b10110101

// flopProgram is a guest with an analytically known FLOP profile per
// iteration (SDE convention: lane operations, FMA = 2/lane, dpps = 4
// multiplies + 3 adds per 128-bit group, masked-off lanes skipped):
//
//	vaddpdz     add.double      8
//	vmulpdzk    mul.double      5   (+3 masked-skipped)
//	vfmaddpdz   fma.double     16
//	divsd       div.double      1
//	sqrtsd      sqrt.double     1
//	vsubpsz     sub.single     16
//	cvtsd2ss    convert.single  1
//	ucomisd     compare.double  1
//	roundsd     round.double    1
//	dpps        mul.single 4, add.single 3
func flopProgram() *fpspy.Program {
	b := fpspy.NewProgram("flops")
	a8 := b.Float64s(0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
	c8 := b.Float64s(0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2)
	s16 := b.Float32s(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
	three := b.Float64s(3)
	b.Movi(isa.R4, int64(a8))
	b.Fldvz(isa.X0, isa.R4, 0)
	b.Movi(isa.R4, int64(c8))
	b.Fldvz(isa.X1, isa.R4, 0)
	b.Movi(isa.R4, int64(s16))
	b.Fldvz(isa.X6, isa.R4, 0)
	b.Movi(isa.R4, int64(three))
	b.Fld(isa.X7, isa.R4, 0)
	b.Movi(isa.R5, flopMask)
	b.Kmovq(isa.K1, isa.R5)
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, flopIters)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpVADDPDZ, isa.X2, isa.X0, isa.X1)
	b.FP2Masked(isa.OpVMULPDKZ, isa.X3, isa.X0, isa.X1, isa.K1)
	b.FMA(isa.OpVFMADDPDZ, isa.X4, isa.X0, isa.X1, isa.X2)
	b.FP2(isa.OpDIVSD, isa.X5, isa.X0, isa.X7)
	b.FP1(isa.OpSQRTSD, isa.X8, isa.X7)
	b.FP2(isa.OpVSUBPSZ, isa.X9, isa.X6, isa.X6)
	b.Cvt(isa.OpCVTSD2SS, isa.X10, isa.X0)
	b.Ucomi(isa.OpUCOMISD, isa.R6, isa.X0, isa.X1)
	b.Round(isa.OpROUNDSD, isa.X11, isa.X0, isa.RoundImmNearest)
	b.Dp(isa.OpDPPS, isa.X12, isa.X6, isa.X6)
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, top)
	b.Hlt()
	return b.Build()
}

// flopSnapshot runs flopProgram under one engine configuration and
// returns the flop.* counter view.
func flopSnapshot(t *testing.T, cfg fpspy.Config) map[string]uint64 {
	t.Helper()
	om := obs.New(obs.Options{})
	run, err := fpspy.Run(flopProgram(), fpspy.Options{Config: cfg, Obs: om})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if run.ExitCode != 0 {
		t.Fatalf("exit %d", run.ExitCode)
	}
	out := map[string]uint64{}
	for name, v := range om.Snapshot().Counters {
		if len(name) > 5 && name[:5] == "flop." {
			out[name] = v
		}
	}
	return out
}

// TestFlopCountersAnalytic reconciles the SDE-style FLOP counters
// against the program's analytically known op mix, exactly, and
// requires the counts to be engine-invariant: the superblock engine,
// the per-instruction fast path, and the individual-mode trapping run
// must all credit identical FLOPs.
func TestFlopCountersAnalytic(t *testing.T) {
	want := map[string]uint64{
		"flop.add.double":     8 * flopIters,
		"flop.mul.double":     5 * flopIters,
		"flop.fma.double":     16 * flopIters,
		"flop.div.double":     1 * flopIters,
		"flop.sqrt.double":    1 * flopIters,
		"flop.sub.single":     16 * flopIters,
		"flop.convert.single": 1 * flopIters,
		"flop.compare.double": 1 * flopIters,
		"flop.round.double":   1 * flopIters,
		"flop.mul.single":     4 * flopIters,
		"flop.add.single":     3 * flopIters,
		"flop.masked-skipped": 3 * flopIters,
	}
	configs := []struct {
		label string
		cfg   fpspy.Config
	}{
		{"superblock", fpspy.Config{Mode: fpspy.ModeAggregate}},
		{"nosuperblock", fpspy.Config{Mode: fpspy.ModeAggregate, NoSuperblock: true}},
		{"individual", fpspy.Config{Mode: fpspy.ModeIndividual}},
		{"individual-noprune", fpspy.Config{Mode: fpspy.ModeIndividual, NoPrune: true}},
	}
	for _, c := range configs {
		got := flopSnapshot(t, c.cfg)
		for name, w := range want {
			if got[name] != w {
				t.Errorf("%s: %s = %d, want %d", c.label, name, got[name], w)
			}
		}
		for name := range got {
			if _, ok := want[name]; !ok {
				t.Errorf("%s: unexpected counter %s = %d", c.label, name, got[name])
			}
		}
	}
}

// TestFlopCountersReconcileWithTrace is the e2e reconciliation gate: on
// a guest whose every FP site raises inexact on every execution, the
// individual-mode trace must contain exactly one record per dynamic
// execution, and multiplying each opcode's record count by its per-
// execution lane FLOPs must land exactly on the flop.* counters.
func TestFlopCountersReconcileWithTrace(t *testing.T) {
	const iters = 6
	b := fpspy.NewProgram("flops-traced")
	a8 := b.Float64s(0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
	c8 := b.Float64s(0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2)
	three := b.Float64s(3)
	b.Movi(isa.R4, int64(a8))
	b.Fldvz(isa.X0, isa.R4, 0)
	b.Movi(isa.R4, int64(c8))
	b.Fldvz(isa.X1, isa.R4, 0)
	b.Movi(isa.R4, int64(three))
	b.Fld(isa.X7, isa.R4, 0)
	b.Movi(isa.R5, flopMask)
	b.Kmovq(isa.K1, isa.R5)
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, iters)
	top := b.Label("top")
	b.Bind(top)
	b.FP2(isa.OpVADDPDZ, isa.X2, isa.X0, isa.X1)                // 0.1+0.2: inexact, 8 lanes
	b.FP2Masked(isa.OpVMULPDKZ, isa.X3, isa.X0, isa.X1, isa.K1) // 5 active lanes, inexact
	b.FMA(isa.OpVFMADDPDZ, isa.X4, isa.X0, isa.X1, isa.X2)      // inexact, 16 flops
	b.FP2(isa.OpDIVSD, isa.X5, isa.X0, isa.X7)                  // 0.1/3: inexact
	b.FP1(isa.OpSQRTSD, isa.X8, isa.X7)                         // sqrt(3): inexact
	b.Cvt(isa.OpCVTSD2SS, isa.X10, isa.X0)                      // 0.1 narrows inexactly
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, top)
	b.Hlt()

	om := obs.New(obs.Options{})
	run, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
		Obs:    om,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	recs, err := run.Store.AllRecords()
	if err != nil {
		t.Fatalf("records: %v", err)
	}

	// Trace-derived dynamic op counts.
	byOp := map[isa.Opcode]uint64{}
	for _, r := range recs {
		byOp[isa.Opcode(r.Opcode)]++
	}
	for _, op := range []isa.Opcode{isa.OpVADDPDZ, isa.OpVMULPDKZ, isa.OpVFMADDPDZ,
		isa.OpDIVSD, isa.OpSQRTSD, isa.OpCVTSD2SS} {
		if byOp[op] != iters {
			t.Errorf("trace has %d records for %s, want %d", byOp[op], op.Info().Name, iters)
		}
	}

	// Per-execution FLOP weights of each traced opcode.
	weights := map[string]map[isa.Opcode]uint64{
		"flop.add.double":     {isa.OpVADDPDZ: 8},
		"flop.mul.double":     {isa.OpVMULPDKZ: 5},
		"flop.fma.double":     {isa.OpVFMADDPDZ: 16},
		"flop.div.double":     {isa.OpDIVSD: 1},
		"flop.sqrt.double":    {isa.OpSQRTSD: 1},
		"flop.convert.single": {isa.OpCVTSD2SS: 1},
		"flop.masked-skipped": {isa.OpVMULPDKZ: 3},
	}
	counters := om.Snapshot().Counters
	for name, ws := range weights {
		var fromTrace uint64
		for op, w := range ws {
			fromTrace += byOp[op] * w
		}
		if counters[name] != fromTrace {
			t.Errorf("%s = %d, but trace-derived count is %d", name, counters[name], fromTrace)
		}
	}
}
