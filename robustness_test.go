package fpspy_test

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/trace"
)

// divConsts loads 1.0 and 3.0 so subsequent DIVSDs raise inexact.
func divConsts(b *fpspy.Builder) {
	b.Movi(isa.R1, int64(math.Float64bits(1)))
	b.Movqx(isa.X0, isa.R1)
	b.Movi(isa.R1, int64(math.Float64bits(3)))
	b.Movqx(isa.X1, isa.R1)
}

func divBurst(b *fpspy.Builder, n int) {
	for i := 0; i < n; i++ {
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
}

// buildFEMeddler faults a few times, calls fesetround mid-run (forcing
// FPSpy to step aside), then keeps computing.
func buildFEMeddler() *fpspy.Program {
	b := fpspy.NewProgram("fe-meddler")
	divConsts(b)
	divBurst(b, 3)
	b.Movi(isa.R1, 1) // FE_DOWNWARD
	b.CallC("fesetround")
	divBurst(b, 3)
	b.Hlt()
	return b.Build()
}

// TestStepAsideRestoresThreadState drives a step-aside under every
// sampler variant and checks FPSpy left nothing of itself behind:
// dispositions restored, MXCSR masks back to default, single-step and
// breakpoint machinery cleared, sampler timers disarmed.
func TestStepAsideRestoresThreadState(t *testing.T) {
	cases := []struct {
		name string
		cfg  fpspy.Config
	}{
		{"plain", fpspy.Config{Mode: fpspy.ModeIndividual}},
		{"temporal-virtual", fpspy.Config{Mode: fpspy.ModeIndividual,
			SampleOnUS: 5, SampleOffUS: 40, VirtualTimer: true}},
		{"temporal-poisson", fpspy.Config{Mode: fpspy.ModeIndividual,
			SampleOnUS: 5, SampleOffUS: 40, Poisson: true, VirtualTimer: true}},
		{"temporal-real", fpspy.Config{Mode: fpspy.ModeIndividual,
			SampleOnUS: 5, SampleOffUS: 40}},
		{"breakpoints", fpspy.Config{Mode: fpspy.ModeIndividual, Breakpoints: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := fpspy.Run(buildFEMeddler(), fpspy.Options{Config: tc.cfg})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit %d", res.ExitCode)
			}
			if res.Store.StepAsides != 1 {
				t.Fatalf("step-asides = %d, want 1", res.Store.StepAsides)
			}
			for _, sig := range []kernel.Signal{kernel.SIGFPE, kernel.SIGTRAP,
				kernel.SIGILL, kernel.SIGVTALRM, kernel.SIGALRM} {
				if res.Proc.Handlers[sig] != nil {
					t.Errorf("%v disposition still installed after step-aside", sig)
				}
			}
			for _, task := range res.Proc.Tasks {
				if got := task.M.CPU.MXCSR.Masks(); got != fpspy.AllEvents {
					t.Errorf("tid %d: MXCSR masks %v, want default %v", task.TID, got, fpspy.AllEvents)
				}
				if task.M.CPU.TF {
					t.Errorf("tid %d: trap flag left set", task.TID)
				}
				if task.M.Breakpoints != nil {
					t.Errorf("tid %d: breakpoints left planted", task.TID)
				}
				if task.TimerArmed(kernel.TimerVirtual) || task.TimerArmed(kernel.TimerReal) {
					t.Errorf("tid %d: sampler timer still armed", task.TID)
				}
			}
			// The abort is typed and visible through the monitor log.
			evs, err := trace.ParseMonitorLog([]byte(res.Store.MonitorLog()))
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range evs {
				if e.Kind == trace.EventAbort {
					found = true
					if e.Reason != string(fpspy.AbortFEAccess) {
						t.Errorf("abort reason %q, want %q", e.Reason, fpspy.AbortFEAccess)
					}
					if e.From != "individual" || e.To != "detached" {
						t.Errorf("abort transition %s -> %s", e.From, e.To)
					}
				}
			}
			if !found {
				t.Error("no abort event in monitor log")
			}
		})
	}
}

// failingWriter models a full disk: every write fails.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("no space left on device")
}

// TestFlushErrorsSurfaceInResult pins the error path from trace flushing
// at thread teardown into Result.TraceErr — failures used to vanish.
func TestFlushErrorsSurfaceInResult(t *testing.T) {
	store := fpspy.NewStoreWithSink(func(fpspy.ThreadKey) io.Writer {
		return failingWriter{}
	})
	b := fpspy.NewProgram("flush-fail")
	divConsts(b)
	divBurst(b, 5)
	b.Hlt()
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
		Store:  store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("a failing trace sink must not harm the guest: exit %d", res.ExitCode)
	}
	if res.TraceErr == nil {
		t.Fatal("Result.TraceErr is nil despite failing sink")
	}
	if !strings.Contains(res.TraceErr.Error(), "no space left on device") {
		t.Errorf("TraceErr %q does not carry the sink error", res.TraceErr)
	}
	if !strings.Contains(res.TraceErr.Error(), "flushing trace") {
		t.Errorf("TraceErr %q does not identify the failing thread trace", res.TraceErr)
	}
	if len(store.FlushErrs()) == 0 {
		t.Error("store recorded no flush errors")
	}
}

// buildSignalFighter registers a SIGFPE handler n times between faults.
func buildSignalFighter(n int) *fpspy.Program {
	b := fpspy.NewProgram("signal-fighter")
	handler := b.Label("handler")
	divConsts(b)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	for i := 0; i < n; i++ {
		b.Movi(isa.R1, int64(kernel.SIGFPE))
		b.Lea(isa.R2, handler)
		b.CallC("signal")
		b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	}
	b.Hlt()
	b.Bind(handler)
	b.CallC("rt_sigreturn")
	return b.Build()
}

// TestAggressiveCountsSignalFights: under FPE_AGGRESSIVE, each absorbed
// registration attempt is counted and logged so fpanalyze can report
// how hard the application fought for FPSpy's signals.
func TestAggressiveCountsSignalFights(t *testing.T) {
	res, err := fpspy.Run(buildSignalFighter(3), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Aggressive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.StepAsides != 0 {
		t.Fatalf("aggressive spy stepped aside %d times", res.Store.StepAsides)
	}
	if got := res.Store.SignalFights()["SIGFPE"]; got != 3 {
		t.Errorf("SignalFights[SIGFPE] = %d, want 3", got)
	}
	// All four faults were still captured — absorption kept the spy on.
	if got := len(res.MustRecords()); got != 4 {
		t.Errorf("records = %d, want 4", got)
	}
	evs, err := trace.ParseMonitorLog([]byte(res.Store.MonitorLog()))
	if err != nil {
		t.Fatal(err)
	}
	var counts []uint64
	for _, e := range evs {
		if e.Kind == trace.EventSignalFight {
			if e.Signal != "SIGFPE" {
				t.Errorf("fight over %q, want SIGFPE", e.Signal)
			}
			counts = append(counts, e.Count)
		}
	}
	if fmt.Sprint(counts) != "[1 2 3]" {
		t.Errorf("fight counts %v, want cumulative [1 2 3]", counts)
	}
}

// buildStomper faults once, rewrites MXCSR behind FPSpy's back with
// ldmxcsr (masking only ZE, leaving inexact unmasked), then faults
// again so the integrity recheck fires.
func buildStomper() *fpspy.Program {
	b := fpspy.NewProgram("mxcsr-stomper")
	stomp := b.Words(0x200) // ZE mask bit only; all flags clear
	divConsts(b)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Movi(isa.R9, int64(stomp))
	b.Ldmxcsr(isa.R9, 0)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Hlt()
	return b.Build()
}

// TestAggressiveReassertsStompedMXCSR: an aggressive spy treats a
// stomped MXCSR as contention, re-asserts its masks, and keeps
// capturing, logging the re-assertion.
func TestAggressiveReassertsStompedMXCSR(t *testing.T) {
	res, err := fpspy.Run(buildStomper(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual, Aggressive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	if res.Store.StepAsides != 0 {
		t.Fatal("aggressive spy detached instead of re-asserting")
	}
	if got := len(res.MustRecords()); got != 2 {
		t.Errorf("records = %d, want 2 (capture survived the stomp)", got)
	}
	reasserts := 0
	for _, e := range res.Store.MonitorEvents() {
		if e.Kind == trace.EventReassert {
			reasserts++
			if e.Reason != string(fpspy.AbortMXCSRStomp) {
				t.Errorf("reassert reason %q, want %q", e.Reason, fpspy.AbortMXCSRStomp)
			}
		}
	}
	if reasserts != 1 {
		t.Errorf("reassert events = %d, want 1", reasserts)
	}
}

// TestDefaultSpyDetachesOnStomp: a mask-everything stomp never faults
// again, so it can only be noticed by the integrity check at thread
// teardown — which must still produce a typed mxcsr-stomp abort.
func TestDefaultSpyDetachesOnStomp(t *testing.T) {
	b := fpspy.NewProgram("mask-all-stomper")
	stomp := b.Words(0x1F80) // default masks, but not what an attached spy expects
	divConsts(b)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X1)
	b.Movi(isa.R9, int64(stomp))
	b.Ldmxcsr(isa.R9, 0)
	divBurst(b, 3) // silent now: everything is masked
	b.Hlt()
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	if res.Store.StepAsides != 1 {
		t.Fatalf("step-asides = %d, want 1", res.Store.StepAsides)
	}
	if got := len(res.MustRecords()); got != 1 {
		t.Errorf("records = %d, want 1 (only the pre-stomp fault)", got)
	}
	found := false
	for _, e := range res.Store.MonitorEvents() {
		if e.Kind == trace.EventAbort && e.Reason == string(fpspy.AbortMXCSRStomp) {
			found = true
		}
	}
	if !found {
		t.Error("no mxcsr-stomp abort in monitor log")
	}
}

// TestTrapStormDemotesToAggregate: a thread exceeding the FPE_STORM
// budget is demoted from individual to aggregate mode — pre-demotion
// records are kept, post-demotion faults stop, and the thread still
// yields a sticky-flag aggregate record at exit.
func TestTrapStormDemotesToAggregate(t *testing.T) {
	b := fpspy.NewProgram("trap-storm")
	divConsts(b)
	divBurst(b, 20)
	b.Hlt()
	res, err := fpspy.Run(b.Build(), fpspy.Options{
		Config: fpspy.Config{Mode: fpspy.ModeIndividual,
			StormFaults: 4, StormCycles: 1_000_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit %d", res.ExitCode)
	}
	// Faults 1-3 recorded individually; the 4th trips the watchdog and
	// is absorbed by the demotion; 5-20 run under sticky aggregate masks.
	if got := len(res.MustRecords()); got != 3 {
		t.Errorf("individual records = %d, want 3", got)
	}
	demotes := 0
	for _, e := range res.Store.MonitorEvents() {
		if e.Kind == trace.EventDemote {
			demotes++
			if e.Reason != string(fpspy.AbortTrapStorm) {
				t.Errorf("demote reason %q, want %q", e.Reason, fpspy.AbortTrapStorm)
			}
			if e.From != "individual" || e.To != "aggregate" {
				t.Errorf("demote transition %s -> %s", e.From, e.To)
			}
		}
	}
	if demotes != 1 {
		t.Errorf("demote events = %d, want 1", demotes)
	}
	aggs := res.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	if aggs[0].Reason != string(fpspy.AbortTrapStorm) {
		t.Errorf("aggregate reason %q, want trap-storm", aggs[0].Reason)
	}
	if aggs[0].Aborted {
		t.Error("demotion is not an abort: Aborted must be false")
	}
	if aggs[0].Flags == 0 {
		t.Error("aggregate record carries no sticky flags")
	}
}
