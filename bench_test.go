package fpspy_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigureN measures the cost of regenerating that artifact
// and, under -v or test logging, emits the rendered table. Key scalar
// results (slowdowns, coverage counts) are reported as benchmark metrics
// so regressions in the *shape* of a result are visible in benchmark
// diffs. BenchmarkAblation* cover the design choices called out in
// DESIGN.md.

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	fpspy "repro"
	"repro/internal/adaptive"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/softfloat"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/workload"
)

// kernelDefaultCost exposes the kernel cost model for ablations.
func kernelDefaultCost() kernel.CostModel { return kernel.DefaultCostModel() }

// sharedStudy caches pass results across benchmarks so the full bench
// suite stays fast.
var (
	sharedStudy     *study.Study
	sharedStudyOnce sync.Once
)

func getStudy() *study.Study {
	sharedStudyOnce.Do(func() { sharedStudy = study.New() })
	return sharedStudy
}

// benchTable runs a figure generator b.N times and logs the rendering.
func benchTable(b *testing.B, gen func() (*study.Table, error)) *study.Table {
	b.Helper()
	var t *study.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + t.Render())
	return t
}

// cell reads a table cell by row label and column name. The first
// matching header wins (Figure 8 has repeated mechanism groups).
func cell(t *study.Table, row, col string) string {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return ""
	}
	for _, r := range t.Rows {
		if r[0] == row {
			return r[ci]
		}
	}
	return ""
}

func BenchmarkFigure6Overhead(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure6)
	// Report the headline slowdowns as metrics.
	for _, r := range t.Rows {
		if strings.Contains(r[0], "50:100") {
			v, _ := strconv.ParseFloat(strings.TrimSuffix(r[len(r)-1], "x"), 64)
			b.ReportMetric(v, "max-slowdown-x")
		}
	}
}

func BenchmarkFigure7Inventory(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure7)
	b.ReportMetric(float64(len(t.Rows)), "codes")
}

func BenchmarkFigure8SourceAnalysis(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure8)
	// WRF is the only application with dynamic floating point control.
	if cell(t, "wrf", "fesetenv") != "T" {
		b.Error("WRF fesetenv reference missing")
	}
}

func BenchmarkFigure9Aggregate(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure9)
	if cell(t, "enzo", "Invalid") != "T" || cell(t, "laghos", "DivideByZero") != "T" {
		b.Error("Figure 9 headline cells wrong")
	}
	if cell(t, "wrf", "Inexact") != "f" {
		b.Error("WRF row should be empty (FPSpy stepped aside)")
	}
}

func BenchmarkFigure10Parsec(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure10)
	b.ReportMetric(float64(len(t.Rows)), "benchmarks")
}

func BenchmarkFigure11Filtered(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure11)
	if cell(t, "miniaero", "Overflow") != "T" {
		b.Error("miniaero Overflow not captured by filtered tracing")
	}
}

func BenchmarkFigure12EnzoNaNs(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure12)
	// The NaN rate must rise over the run (Figure 12's shape).
	first, _ := strconv.ParseFloat(t.Rows[0][1], 64)
	lastQuarter := t.Rows[3*len(t.Rows)/4]
	later, _ := strconv.ParseFloat(lastQuarter[1], 64)
	if later <= first {
		b.Errorf("NaN rate did not rise: %v -> %v", first, later)
	}
	b.ReportMetric(later/first, "rate-growth-x")
}

func BenchmarkFigure13LaghosBursts(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure13)
	// Bursty: both zero bins and high-rate bins exist.
	zeros, busy := 0, 0
	for _, r := range t.Rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		if v == 0 {
			zeros++
		} else {
			busy++
		}
	}
	if zeros == 0 || busy == 0 {
		b.Errorf("no burst structure: %d zero bins, %d busy bins", zeros, busy)
	}
	b.ReportMetric(float64(busy)/float64(zeros+busy), "burst-duty")
}

func BenchmarkFigure14Sampled(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure14)
	// Sampling keeps the common events and misses the rare windows.
	if cell(t, "enzo", "Invalid") != "T" || cell(t, "laghos", "DivideByZero") != "T" {
		b.Error("sampling lost a persistent event class")
	}
	if cell(t, "miniaero", "Denorm") != "f" || cell(t, "gromacs", "Denorm") != "f" {
		b.Error("sampling should miss the one-shot denormal windows")
	}
	if cell(t, "wrf", "Inexact") != "T" {
		b.Error("WRF rounding should be visible under sampling")
	}
}

func BenchmarkFigure15InexactRates(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure15)
	rate := func(name string) float64 {
		v, _ := strconv.ParseFloat(cell(t, name, "Inexact events/s"), 64)
		return v
	}
	// The paper's rate ordering: MOOSE and Miniaero at the top, GROMACS
	// at the bottom, LAMMPS and WRF in the low group.
	if rate("gromacs") >= rate("laghos") || rate("lammps") >= rate("laghos") {
		b.Error("rate ordering: low group not below laghos")
	}
	if rate("moose") <= rate("enzo") || rate("miniaero") <= rate("enzo") {
		b.Error("rate ordering: FEM/CFD codes should lead")
	}
	b.ReportMetric(rate("moose")/rate("gromacs"), "rate-spread-x")
}

func BenchmarkFigure16Cumulative(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure16)
	// Cumulative counts are monotone by construction; verify growth.
	for _, r := range t.Rows {
		q1, _ := strconv.ParseFloat(r[1], 64)
		end, _ := strconv.ParseFloat(r[4], 64)
		if end < q1 || end == 0 {
			b.Errorf("%s: cumulative curve broken (%v .. %v)", r[0], q1, end)
		}
	}
}

func BenchmarkFigure17FormRank(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure17)
	// The paper: fewer than 45 forms per code; a handful cover 99%.
	for _, r := range t.Rows {
		forms, _ := strconv.Atoi(r[2])
		cover, _ := strconv.Atoi(r[4])
		if forms >= 45 {
			b.Errorf("%s uses %d forms (>45)", r[0], forms)
		}
		if cover > 20 {
			b.Errorf("%s needs %d forms for 99%% coverage", r[0], cover)
		}
	}
}

func BenchmarkFigure18FormHistogram(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure18)
	// GROMACS-only forms exist and no other single code contributes a
	// comparable private vocabulary.
	found := false
	for _, n := range t.Notes {
		if strings.Contains(n, "GROMACS-only forms") {
			found = true
			// The paper's headline: exactly 25 exclusive forms.
			if !strings.Contains(n, "GROMACS-only forms (25)") {
				b.Errorf("exclusive form count drifted: %s", n)
			}
			for _, f := range []string{"vdpps", "vfmaddps", "vucomiss", "vcvttss2si", "cvtsi2sdq", "vsqrtsd"} {
				if !strings.Contains(n, f) {
					b.Errorf("GROMACS-only list missing %s", f)
				}
			}
		}
	}
	if !found {
		b.Error("no GROMACS-only note")
	}
}

func BenchmarkFigure19AddressRank(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Figure19)
	for _, r := range t.Rows {
		sites, _ := strconv.Atoi(r[1])
		cover, _ := strconv.Atoi(r[2])
		if sites >= 5000 {
			b.Errorf("%s has %d sites (>5000)", r[0], sites)
		}
		if cover > 100 {
			b.Errorf("%s needs %d sites for 99%%", r[0], cover)
		}
	}
}

func BenchmarkSection6Mitigation(b *testing.B) {
	s := getStudy()
	t := benchTable(b, s.Section6)
	// Locality should make patching win for every application.
	for _, r := range t.Rows {
		if r[len(r)-1] != "true" {
			b.Errorf("%s: patching does not win despite locality", r[0])
		}
	}
}

// --- Ablations (design choices from DESIGN.md) ---

// BenchmarkAblationFlagDetection compares the soft-float engine against
// a hardware-float + FMA-residual scheme for inexact detection (the
// alternative design for the FPU substrate).
func BenchmarkAblationFlagDetection(b *testing.B) {
	env := softfloat.Env{RM: softfloat.RoundNearestEven}
	xs := make([]uint64, 1024)
	for i := range xs {
		xs[i] = math.Float64bits(1.0 + float64(i)*0.3)
	}
	b.Run("softfloat", func(b *testing.B) {
		var flags softfloat.Flags
		for i := 0; i < b.N; i++ {
			a, c := xs[i%1024], xs[(i+7)%1024]
			_, fl := softfloat.Mul64(a, c, env)
			flags |= fl
		}
		_ = flags
	})
	b.Run("hw-residual", func(b *testing.B) {
		inexact := false
		for i := 0; i < b.N; i++ {
			a := math.Float64frombits(xs[i%1024])
			c := math.Float64frombits(xs[(i+7)%1024])
			p := a * c
			// Residual-based detection: exact iff fma(a,c,-p) == 0.
			inexact = math.FMA(a, c, -p) != 0 || inexact
		}
		_ = inexact
	})
}

// BenchmarkAblationTrapStrategy compares the single-event mechanisms:
// the TF single-step protocol, the *implemented* Section 3.8 breakpoint
// protocol (stub the next instruction with an invalid opcode), and a
// hypothetical one-crossing scheme modeled by zeroing the trap cost.
func BenchmarkAblationTrapStrategy(b *testing.B) {
	run := func(breakpoints, trapFree bool) float64 {
		opts := fpspy.Options{Config: fpspy.Config{
			Mode: fpspy.ModeIndividual, SampleOnUS: 50, SampleOffUS: 100,
			Poisson: true, VirtualTimer: true, Breakpoints: breakpoints,
		}}
		if trapFree {
			cm := kernelDefaultCost()
			cm.Trap = 0
			opts.CostModel = &cm
		}
		res, err := fpspy.Run(workload.BuildMiniaeroCalibrated(workload.SizeLarge), opts)
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.WallCycles)
	}
	var tf, brk, oneCross float64
	for i := 0; i < b.N; i++ {
		tf = run(false, false)
		brk = run(true, false)
		oneCross = run(false, true)
	}
	b.ReportMetric(tf/oneCross, "two-vs-one-crossing-x")
	b.ReportMetric(brk/tf, "breakpoint-vs-tf-x")
	// Both real mechanisms take two kernel crossings per event; they
	// must cost the same to within scheduling noise.
	if brk/tf > 1.05 || brk/tf < 0.95 {
		b.Errorf("breakpoint protocol cost diverged: %.3f", brk/tf)
	}
}

// BenchmarkAblationSampling compares Poisson temporal sampling against
// deterministic 1-in-N subsampling at matched capture budgets: the
// temporal sampler preserves temporal structure, the subsampler
// preserves per-event-type proportions.
func BenchmarkAblationSampling(b *testing.B) {
	w, err := workload.ByName("laghos")
	if err != nil {
		b.Fatal(err)
	}
	var poisson, everyN int
	for i := 0; i < b.N; i++ {
		p, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeIndividual,
				SampleOnUS: 5, SampleOffUS: 100, Poisson: true, VirtualTimer: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		n, err := fpspy.Run(w.Build(workload.SizeLarge), fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeIndividual, SampleEvery: 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		poisson = len(p.MustRecords())
		everyN = len(n.MustRecords())
	}
	b.ReportMetric(float64(poisson), "poisson-records")
	b.ReportMetric(float64(everyN), "subsample-records")
}

// BenchmarkAblationTraceWriter measures buffered record writing against
// per-record writes.
func BenchmarkAblationTraceWriter(b *testing.B) {
	rec := trace.Record{Time: 1, Rip: 2, Rsp: 3, TID: 4}
	b.Run("buffered", func(b *testing.B) {
		w := trace.NewWriter(discard{})
		for i := 0; i < b.N; i++ {
			rec.Seq = uint64(i)
			if err := w.Append(&rec); err != nil {
				b.Fatal(err)
			}
		}
		_ = w.Flush()
	})
	b.Run("unbuffered", func(b *testing.B) {
		var buf [trace.RecordSize]byte
		d := discard{}
		for i := 0; i < b.N; i++ {
			rec.Seq = uint64(i)
			rec.Encode(buf[:])
			if _, err := d.Write(buf[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkSpyCore measures the end-to-end cost of one traced floating
// point event (fault, record, single-step, restore).
func BenchmarkSpyCore(b *testing.B) {
	prog := buildEventProgram(2000)
	spy := func() {
		res, err := fpspy.Run(prog, fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeIndividual},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Store.Recorded == 0 {
			b.Fatal("no records")
		}
	}
	// Regression gate for the fast-path engine: before per-machine event
	// scratch and per-task signal scratch, each of the 2000 traced events
	// heap-allocated its event, siginfo, and mcontext (~12k allocs per
	// run). The run sits at ~151 allocs: store, trace buffer, simulation
	// setup, the absint analysis (content-key cached), and the superblock
	// region cache (one sbCache slice per machine plus one meta slice per
	// distinct region start — a fixed cost per program shape, never per
	// event or per region re-entry). The ceiling leaves headroom for
	// those fixed costs but not for any per-event or per-dispatch
	// allocation creeping back in.
	if allocs := testing.AllocsPerRun(1, spy); allocs > 500 {
		b.Fatalf("spy core allocates %.0f times per run; per-event or per-region allocation has crept back in", allocs)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spy()
	}
}

// BenchmarkStudyFull regenerates the paper's entire evaluation from a
// cold cache, serially and on the parallel pass scheduler. The two
// produce byte-identical output (TestParallelStudyMatchesSerial); this
// measures what the scheduler buys in wall clock on multi-core hosts.
func BenchmarkStudyFull(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // one worker per CPU
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := study.NewWithWorkers(bc.workers)
				tables, err := s.All()
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) != 15 {
					b.Fatalf("artifacts = %d, want 15", len(tables))
				}
			}
		})
	}
}

// BenchmarkSoftFloatOps measures raw soft-FPU throughput.
func BenchmarkSoftFloatOps(b *testing.B) {
	env := softfloat.Env{RM: softfloat.RoundNearestEven}
	a := math.Float64bits(1.7)
	c := math.Float64bits(2.3)
	b.Run("Add64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ = softfloat.Add64(a, c, env)
			a = a&0x000FFFFFFFFFFFFF | 0x3FF0000000000000
		}
	})
	b.Run("Mul64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ = softfloat.Mul64(a, c, env)
			a = a&0x000FFFFFFFFFFFFF | 0x3FF0000000000000
		}
	})
	b.Run("Div64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ = softfloat.Div64(a, c, env)
			a = a&0x000FFFFFFFFFFFFF | 0x3FF0000000000000
		}
	})
	b.Run("FMA64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ = softfloat.FMA64(a, c, a, env)
			a = a&0x000FFFFFFFFFFFFF | 0x3FF0000000000000
		}
	})
	b.Run("Sqrt64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _ = softfloat.Sqrt64(a, env)
			a = a&0x000FFFFFFFFFFFFF | 0x3FF0000000000000
		}
	})
}

// BenchmarkSection37Scaling reproduces the paper's Section 3.7 claim:
// FPSpy is embarrassingly parallel with a fixed overhead per thread, so
// per-thread cost stays flat as thread count grows.
func BenchmarkSection37Scaling(b *testing.B) {
	build := func(threads int) *fpspy.Program {
		pb := fpspy.NewProgram("scaling")
		worker := pb.Label("worker")
		for i := 0; i < threads; i++ {
			pb.Lea(1, worker)
			pb.Movi(2, int64(i))
			pb.CallC("pthread_create")
		}
		// Main waits for all workers via a shared counter.
		pb.Movi(7, 1024)
		wait := pb.Label("wait")
		pb.Bind(wait)
		pb.Ld(6, 7, 0)
		pb.Movi(5, int64(threads))
		pb.Bne(6, 5, wait)
		pb.Hlt()
		pb.Bind(worker)
		// Each worker produces 200 rounding events.
		pb.Movi(6, int64(math.Float64bits(1)))
		pb.Movqx(0, 6)
		pb.Movi(6, int64(math.Float64bits(3)))
		pb.Movqx(1, 6)
		pb.Movi(8, 0)
		pb.Movi(9, 200)
		top := pb.Label("top")
		pb.Bind(top)
		pb.FP2(isa.OpDIVSD, 2, 0, 1)
		pb.Addi(8, 8, 1)
		pb.Blt(8, 9, top)
		// count++ (single-writer increments are serialized by the
		// cooperative scheduler's quantum granularity; fine for a bench).
		pb.Movi(7, 1024)
		pb.Ld(6, 7, 0)
		pb.Addi(6, 6, 1)
		pb.St(7, 0, 6)
		pb.CallC("pthread_exit")
		return pb.Build()
	}
	perThread := map[int]float64{}
	for _, threads := range []int{1, 4, 16} {
		threads := threads
		res, err := fpspy.Run(build(threads), fpspy.Options{
			Config: fpspy.Config{Mode: fpspy.ModeIndividual},
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(res.Store.Threads()); got != threads+1 {
			b.Fatalf("%d threads: traced %d", threads, got)
		}
		perThread[threads] = float64(res.SysCycles) / float64(threads)
	}
	for i := 0; i < b.N; i++ {
		_ = build(4)
	}
	ratio := perThread[16] / perThread[1]
	b.ReportMetric(ratio, "per-thread-cost-16v1-x")
	if ratio > 1.5 || ratio < 0.6 {
		b.Errorf("per-thread overhead not flat: 1->%0.f 16->%0.f cycles", perThread[1], perThread[16])
	}
}

// BenchmarkSection6MitigationFlavors validates the feasibility model's
// prediction empirically: the binary-patching mitigator (one kernel
// crossing per rounding event, no FP unmasking) beats the
// trap-and-emulate mitigator (SIGFPE per event) on the same kernel,
// with identical numerical results.
func BenchmarkSection6MitigationFlavors(b *testing.B) {
	const n = 20000
	prog := func() *fpspy.Program {
		pb := fpspy.NewProgram("mitig-bench")
		pb.Movi(6, int64(math.Float64bits(0.1)))
		pb.Movqx(1, 6)
		pb.Movqx(0, 0)
		pb.Movi(8, 0)
		pb.Movi(9, n)
		top := pb.Label("top")
		pb.Bind(top)
		pb.FP2(isa.OpADDSD, 0, 0, 1)
		pb.Addi(8, 8, 1)
		pb.Blt(8, 9, top)
		pb.Movi(10, 128)
		pb.Fst(10, 0, 0)
		pb.Hlt()
		return pb.Build()
	}
	var trapWall, patchWall float64
	var trapRes, patchRes uint64
	for i := 0; i < b.N; i++ {
		res, stats, err := fpspy.RunMitigated(prog(), 256, fpspy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Emulated == 0 {
			b.Fatal("trap flavor emulated nothing")
		}
		trapWall = float64(res.WallCycles)
		trapRes = readU64(res.Proc.Mem, 128)

		sites, err := adaptive.ProfileRoundingSites(prog(), 1<<21, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		k := kernel.New()
		pstats := &adaptive.Stats{}
		k.RegisterPreload(adaptive.PatchedPreloadName, adaptive.PatchedFactory(256, sites, pstats))
		p, err := k.Spawn(prog(), 1<<21, map[string]string{"LD_PRELOAD": adaptive.PatchedPreloadName})
		if err != nil {
			b.Fatal(err)
		}
		k.Run(100_000_000)
		if !p.Exited {
			b.Fatal("patched run stuck")
		}
		patchWall = float64(k.Cycles)
		patchRes = readU64(p.Mem, 128)
	}
	if trapRes != patchRes {
		b.Errorf("flavors disagree: %#x vs %#x", trapRes, patchRes)
	}
	speedup := trapWall / patchWall
	b.ReportMetric(speedup, "patch-speedup-x")
	if speedup <= 1.0 {
		b.Errorf("patching did not win: %.3f", speedup)
	}
}

func readU64(mem []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(mem[off+i]) << (8 * i)
	}
	return v
}

// BenchmarkShadowOverhead measures what the shadow-precision channel
// (FPE_SHADOW) costs on a rounding-heavy guest, swept across the
// precisions a root-cause study actually uses: off, binary64-matching
// 53, binary128 113, and an oversampled 256. Every retired FP
// instruction is re-executed in big.Float arithmetic, so the slowdown is
// the per-op price of attribution; the off leg is the baseline the
// shadow differential suite proves bit-identical.
func BenchmarkShadowOverhead(b *testing.B) {
	// 2000 iterations of add/mul/div over values that round on every op.
	prog := func() *fpspy.Program {
		pb := fpspy.NewProgram("shadow-bench")
		pb.Movi(isa.R1, int64(math.Float64bits(0.1)))
		pb.Movqx(isa.X0, isa.R1)
		pb.Movi(isa.R1, int64(math.Float64bits(1.0000000001)))
		pb.Movqx(isa.X1, isa.R1)
		pb.Movi(isa.R1, int64(math.Float64bits(3)))
		pb.Movqx(isa.X5, isa.R1)
		pb.Movi(isa.R2, 0)
		pb.Movi(isa.R3, 2000)
		loop := pb.Label("loop")
		pb.Bind(loop)
		pb.FP2(isa.OpADDSD, isa.X2, isa.X2, isa.X0)
		pb.FP2(isa.OpMULSD, isa.X3, isa.X2, isa.X1)
		pb.FP2(isa.OpDIVSD, isa.X4, isa.X3, isa.X5)
		pb.Addi(isa.R2, isa.R2, 1)
		pb.Blt(isa.R2, isa.R3, loop)
		pb.Hlt()
		return pb.Build()
	}()
	for _, prec := range []uint64{0, 53, 113, 256} {
		name := "off"
		if prec != 0 {
			name = "prec" + strconv.FormatUint(prec, 10)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fpspy.Run(prog, fpspy.Options{
					Config: fpspy.Config{Mode: fpspy.ModeIndividual, ShadowPrec: prec},
				})
				if err != nil {
					b.Fatal(err)
				}
				sites := res.Store.ShadowSites()
				if prec == 0 && len(sites) != 0 {
					b.Fatal("shadow-off run attributed sites")
				}
				if prec != 0 && len(sites) == 0 {
					b.Fatal("shadow run attributed nothing")
				}
			}
		})
	}
}
