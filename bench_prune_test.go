package fpspy_test

import (
	"testing"

	fpspy "repro"
	"repro/internal/isa"
	"repro/internal/obs"
)

// buildQuietProgram returns a guest whose inner loop is entirely exact
// arithmetic on constants — every loop FP site is statically provable
// never-trap — followed by two genuine events (divide-by-zero, invalid)
// so individual mode still has something to trace. This is the
// best-case shape for trap-site pruning: the abstract interpreter
// proves the loop quiet and the machine retires it with native
// arithmetic instead of the soft-FPU.
func buildQuietProgram(n int) *fpspy.Program {
	b := fpspy.NewProgram("quiet")
	consts := b.Float64s(1.0, 2.0, 0.5, 0.0)
	b.Movi(isa.R1, int64(consts))
	b.Fld(isa.X0, isa.R1, 0)  // 1.0
	b.Fld(isa.X1, isa.R1, 8)  // 2.0
	b.Fld(isa.X6, isa.R1, 16) // 0.5
	b.Fld(isa.X7, isa.R1, 24) // 0.0
	b.Movi(isa.R2, 0)
	b.Movi(isa.R3, int64(n))
	loop := b.Label("loop")
	b.Bind(loop)
	b.FP2(isa.OpADDSD, isa.X2, isa.X0, isa.X1) // 1+2 = 3, exact
	b.FP2(isa.OpMULSD, isa.X3, isa.X2, isa.X6) // 3*0.5 = 1.5, exact
	b.FP2(isa.OpSUBSD, isa.X4, isa.X3, isa.X0) // 1.5-1 = 0.5, exact
	b.FP2(isa.OpMINSD, isa.X5, isa.X4, isa.X1) // min(0.5,2), exact
	b.Addi(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, loop)
	b.FP2(isa.OpDIVSD, isa.X2, isa.X0, isa.X7) // 1/0: divide by zero
	b.FP2(isa.OpDIVSD, isa.X3, isa.X7, isa.X7) // 0/0: invalid
	b.Hlt()
	return b.Build()
}

// BenchmarkSpyCorePrune measures the individual-mode run of the
// quiet-heavy guest with static trap-site pruning on (default) and off
// (FPE_NOPRUNE, the ablation). The corpus study shows real workloads
// are inexact-dominated with few prunable sites, so this isolates the
// mechanism's ceiling: how much the native-arithmetic quiet path saves
// per proven-quiet FP retire versus the soft-FPU.
func BenchmarkSpyCorePrune(b *testing.B) {
	prog := buildQuietProgram(200000)

	// Sanity: the analysis must actually prune the loop body, and the
	// run must still capture the two real events.
	m := obs.New(obs.Options{})
	res, err := fpspy.Run(prog, fpspy.Options{
		Config:   fpspy.Config{Mode: fpspy.ModeIndividual},
		MemBytes: 2 << 20,
		Obs:      m,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Store.Recorded < 2 {
		b.Fatalf("recorded %d events, want >= 2", res.Store.Recorded)
	}
	if pruned := m.Prune.SitesPruned.Load(); pruned < 4 {
		b.Fatalf("pruned %d sites, want the 4 loop sites", pruned)
	}
	if m.Machine.QuietSteps.Load() == 0 {
		b.Fatal("no quiet retires despite pruned sites")
	}

	for _, bc := range []struct {
		name    string
		noPrune bool
	}{
		{"pruned", false},
		{"noprune", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := fpspy.Run(prog, fpspy.Options{
					Config: fpspy.Config{
						Mode:    fpspy.ModeIndividual,
						NoPrune: bc.noPrune,
					},
					MemBytes: 2 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Store.Recorded < 2 {
					b.Fatal("events lost")
				}
			}
		})
	}
}
